// Machine-readable perf tracking: runs the micro/parallel headline
// workloads and emits BENCH_micro.json / BENCH_parallel.json with
// nodes/sec and cells_copied per expansion, so the perf trajectory of the
// engine is recorded PR over PR.
//
//   ./bench_json [output-dir]
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>

#include "blog/engine/interpreter.hpp"
#include "blog/parallel/engine.hpp"
#include "blog/workloads/workloads.hpp"

using namespace blog;
using Clock = std::chrono::steady_clock;

namespace {

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct Entry {
  std::string name;
  std::size_t nodes = 0;
  std::size_t cells_copied = 0;
  std::size_t solutions = 0;
  double secs = 0.0;

  [[nodiscard]] double nodes_per_sec() const {
    return secs > 0.0 ? static_cast<double>(nodes) / secs : 0.0;
  }
  [[nodiscard]] double cells_per_expansion() const {
    return nodes > 0 ? static_cast<double>(cells_copied) /
                           static_cast<double>(nodes)
                     : 0.0;
  }
};

void write_json(const std::string& path, const std::vector<Entry>& entries) {
  std::ofstream out(path);
  out << "{\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    out << "  \"" << e.name << "\": {"
        << "\"nodes\": " << e.nodes << ", \"solutions\": " << e.solutions
        << ", \"seconds\": " << e.secs
        << ", \"nodes_per_sec\": " << e.nodes_per_sec()
        << ", \"cells_copied\": " << e.cells_copied
        << ", \"cells_copied_per_expansion\": " << e.cells_per_expansion()
        << "}" << (i + 1 < entries.size() ? "," : "") << "\n";
  }
  out << "}\n";
  std::printf("wrote %s\n", path.c_str());
}

Entry run_sequential(const std::string& name, const std::string& program,
                     const std::string& query, search::Strategy strategy) {
  engine::Interpreter ip;
  ip.consult_string(program);
  search::SearchOptions o;
  o.strategy = strategy;
  o.update_weights = false;
  const auto t0 = Clock::now();
  const auto r = ip.solve(query, o);
  Entry e;
  e.name = name;
  e.secs = seconds_since(t0);
  e.nodes = r.stats.nodes_expanded;
  e.cells_copied = r.stats.expand.cells_copied;
  e.solutions = r.solutions.size();
  return e;
}

Entry run_parallel(const std::string& name, const std::string& program,
                   const std::string& query, unsigned workers) {
  engine::Interpreter ip;
  ip.consult_string(program);
  parallel::ParallelOptions po;
  po.workers = workers;
  po.update_weights = false;
  parallel::ParallelEngine pe(ip.program(), ip.weights(), &ip.builtins(), po);
  const auto t0 = Clock::now();
  const auto r = pe.solve(ip.parse_query(query));
  Entry e;
  e.name = name;
  e.secs = seconds_since(t0);
  e.nodes = r.nodes_expanded;
  for (const auto& w : r.workers) e.cells_copied += w.cells_copied;
  e.solutions = r.solutions.size();
  return e;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? std::string(argv[1]) + "/" : "";
  const std::string append =
      "append([],L,L). append([H|T],L,[H|R]) :- append(T,L,R).";
  const std::string dag = workloads::layered_dag(5, 3);

  std::vector<Entry> micro;
  micro.push_back(run_sequential("deep_recursion_dfs", workloads::nat_program(),
                                 workloads::deep_nat_query(400),
                                 search::Strategy::DepthFirst));
  micro.push_back(run_sequential(
      "append_all_splits_dfs", append,
      "append(X,Y,[1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16])",
      search::Strategy::DepthFirst));
  micro.push_back(run_sequential("dag_paths_bestfirst", dag, "path(n0_0,Z,P)",
                                 search::Strategy::BestFirst));
  micro.push_back(run_sequential("family_bestfirst", workloads::figure1_family(),
                                 "gf(sam,G)", search::Strategy::BestFirst));
  write_json(dir + "BENCH_micro.json", micro);

  std::vector<Entry> par;
  for (const unsigned w : {1u, 2u, 4u, 8u})
    par.push_back(
        run_parallel("dag_w" + std::to_string(w), dag, "path(n0_0,Z,P)", w));
  write_json(dir + "BENCH_parallel.json", par);
  return 0;
}
