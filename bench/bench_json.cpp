// Machine-readable perf tracking: runs the micro/index/analysis/parallel/
// spill/numa/serving/executor headline workloads and emits
// BENCH_micro.json / BENCH_index.json / BENCH_analysis.json /
// BENCH_parallel.json / BENCH_spill.json / BENCH_numa.json /
// BENCH_service.json / BENCH_executor.json / BENCH_andor.json
// (nodes/sec, cells_copied per
// expansion, trail writes per expansion, copy-on-steal traffic,
// claim-wait latency, local vs remote steal split, queries/sec, cache
// hit rate, persistent-pool vs spawn-per-query qps + tail latency,
// and unified AND/OR scheduler speedup + join cost),
// so the perf trajectory of the engine is recorded PR over PR. Every file carries a "host" record (NUMA node
// count, CPUs per node, CPU model) so baselines compared across
// heterogeneous machines stay interpretable. CI's perf-gate job compares
// this output against bench/baselines/ with tools/bench_compare.py.
//
//   ./bench_json [output-dir]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>

#include "blog/andp/exec.hpp"
#include "blog/engine/interpreter.hpp"
#include "blog/obs/trace.hpp"
#include "blog/parallel/engine.hpp"
#include "blog/parallel/topology.hpp"
#include "blog/service/service.hpp"
#include "blog/workloads/workloads.hpp"

using namespace blog;
using Clock = std::chrono::steady_clock;

namespace {

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// The host record stamped into every BENCH_*.json. bench_compare.py
/// warns (instead of gating) when baseline and current host disagree.
void write_host(std::ofstream& out) {
  const parallel::Topology& topo = parallel::Topology::system();
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const unsigned nodes = topo.node_count();
  std::string model = parallel::cpu_model_name();
  for (char& c : model)
    if (c == '"' || c == '\\') c = ' ';  // keep the JSON well-formed
  // One entry per node: asymmetric layouts (offlined cores, CXL nodes)
  // must not masquerade as symmetric ones in cross-host comparisons.
  out << "  \"host\": {\"numa_nodes\": " << nodes << ", \"cpus_per_node\": [";
  if (topo.nodes().empty()) {
    out << hw;  // single-node fallback: all CPUs on the one node
  } else {
    for (std::size_t i = 0; i < topo.nodes().size(); ++i)
      out << (i > 0 ? ", " : "") << topo.nodes()[i].cpus.size();
  }
  out << "], \"hardware_concurrency\": " << hw << ", \"cpu_model\": \""
      << model << "\"},\n";
}

struct Entry {
  std::string name;
  std::size_t nodes = 0;
  std::size_t cells_copied = 0;
  std::size_t solutions = 0;
  double secs = 0.0;
  // Head-unification work (sequential entries): attempts made and cells
  // visited; the compile layer's headline is how far these collapse.
  bool has_unify = false;
  std::size_t unify_attempts = 0;
  std::size_t unify_cells = 0;
  // Query batches (index entries): lookups issued in the timed loop.
  std::size_t queries = 0;
  // Trail traffic (analysis entries): cumulative Trail::push calls.
  bool has_trail = false;
  std::uint64_t trail_writes = 0;
  // Scheduler traffic (parallel entries only).
  bool has_sched = false;
  std::uint64_t lock_acquisitions = 0;
  std::uint64_t steals = 0;
  // Copy-on-steal traffic (spill entries only).
  bool has_spill = false;
  std::uint64_t handles_published = 0;
  std::uint64_t handles_reclaimed = 0;
  std::uint64_t handles_granted = 0;
  std::uint64_t handles_migrated = 0;
  // Locality + claim-wait traffic (numa entries only).
  bool has_numa = false;
  std::uint64_t steals_local = 0;
  std::uint64_t steals_remote = 0;
  std::uint64_t claim_wait_spins = 0;
  std::uint64_t claim_wait_us = 0;
  std::uint64_t mailbox_parked = 0;
  std::uint64_t mailbox_drained = 0;
  std::uint64_t stale_refreshes = 0;

  [[nodiscard]] double nodes_per_sec() const {
    return secs > 0.0 ? static_cast<double>(nodes) / secs : 0.0;
  }
  [[nodiscard]] double cells_per_expansion() const {
    return nodes > 0 ? static_cast<double>(cells_copied) /
                           static_cast<double>(nodes)
                     : 0.0;
  }
  [[nodiscard]] double unify_cells_per_expansion() const {
    return nodes > 0 ? static_cast<double>(unify_cells) /
                           static_cast<double>(nodes)
                     : 0.0;
  }
  [[nodiscard]] double queries_per_sec() const {
    return secs > 0.0 ? static_cast<double>(queries) / secs : 0.0;
  }
  [[nodiscard]] double trail_writes_per_expansion() const {
    return nodes > 0 ? static_cast<double>(trail_writes) /
                           static_cast<double>(nodes)
                     : 0.0;
  }
};

void write_json(const std::string& path, const std::vector<Entry>& entries,
                const std::vector<std::pair<std::string, double>>& summary = {}) {
  std::ofstream out(path);
  out << "{\n";
  write_host(out);
  for (const auto& [k, v] : summary) out << "  \"" << k << "\": " << v << ",\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    out << "  \"" << e.name << "\": {"
        << "\"nodes\": " << e.nodes << ", \"solutions\": " << e.solutions
        << ", \"seconds\": " << e.secs
        << ", \"nodes_per_sec\": " << e.nodes_per_sec()
        << ", \"cells_copied\": " << e.cells_copied
        << ", \"cells_copied_per_expansion\": " << e.cells_per_expansion();
    if (e.has_unify)
      out << ", \"unify_attempts\": " << e.unify_attempts
          << ", \"unify_cells\": " << e.unify_cells
          << ", \"unify_cells_per_expansion\": " << e.unify_cells_per_expansion();
    if (e.queries > 0)
      out << ", \"queries\": " << e.queries
          << ", \"queries_per_sec\": " << e.queries_per_sec();
    if (e.has_trail)
      out << ", \"trail_writes\": " << e.trail_writes
          << ", \"trail_writes_per_expansion\": "
          << e.trail_writes_per_expansion();
    if (e.has_sched)
      out << ", \"lock_acquisitions\": " << e.lock_acquisitions
          << ", \"steals\": " << e.steals;
    if (e.has_spill)
      out << ", \"handles_published\": " << e.handles_published
          << ", \"handles_reclaimed\": " << e.handles_reclaimed
          << ", \"handles_granted\": " << e.handles_granted
          << ", \"handles_migrated\": " << e.handles_migrated;
    if (e.has_numa)
      out << ", \"steals_local\": " << e.steals_local
          << ", \"steals_remote\": " << e.steals_remote
          << ", \"claim_wait_spins\": " << e.claim_wait_spins
          << ", \"claim_wait_us\": " << e.claim_wait_us
          << ", \"mailbox_parked\": " << e.mailbox_parked
          << ", \"mailbox_drained\": " << e.mailbox_drained
          << ", \"stale_refreshes\": " << e.stale_refreshes;
    out << "}" << (i + 1 < entries.size() ? "," : "") << "\n";
  }
  out << "}\n";
  std::printf("wrote %s\n", path.c_str());
}

Entry run_sequential(const std::string& name, const std::string& program,
                     const std::string& query, search::Strategy strategy) {
  engine::Interpreter ip;
  ip.consult_string(program);
  search::SearchOptions o;
  o.strategy = strategy;
  o.update_weights = false;
  const auto t0 = Clock::now();
  const auto r = ip.solve(query, o);
  Entry e;
  e.name = name;
  e.secs = seconds_since(t0);
  e.nodes = r.stats.nodes_expanded;
  e.cells_copied = r.stats.expand.cells_copied;
  e.solutions = r.solutions.size();
  e.has_unify = true;
  e.unify_attempts = r.stats.expand.unify_attempts;
  e.unify_cells = r.stats.expand.unify_cells;
  return e;
}

// ------------------------------------------------------------- index bench --
// The compile-layer headline: ground point lookups into a wide fact base,
// run with the hot path fully off (linear scan + import-then-unify), with
// the hash index alone, and with index + head bytecode. Same query batch,
// same answers; only the candidate set size and the rejection machinery
// change.

Entry run_lookup_batch(const std::string& name, const std::string& program,
                       int employees, int lookups, bool indexing,
                       bool bytecode) {
  engine::Interpreter ip;
  ip.consult_string(program);
  search::SearchOptions o;
  o.strategy = search::Strategy::DepthFirst;
  o.update_weights = false;
  o.expander.first_arg_indexing = indexing;
  o.expander.head_bytecode = bytecode;
  Entry e;
  e.name = name;
  e.has_unify = true;
  e.queries = static_cast<std::size_t>(lookups);
  const auto t0 = Clock::now();
  for (int i = 0; i < lookups; ++i) {
    // Stride coprime with the table size: touches employees all over the
    // fact list so the scan cost is the average, not the best case.
    const auto r =
        ip.solve(workloads::deductive_db_lookup((i * 7919) % employees), o);
    e.nodes += r.stats.nodes_expanded;
    e.cells_copied += r.stats.expand.cells_copied;
    e.unify_attempts += r.stats.expand.unify_attempts;
    e.unify_cells += r.stats.expand.unify_cells;
    e.solutions += r.solutions.size();
  }
  e.secs = seconds_since(t0);
  return e;
}

Entry run_parallel(const std::string& name, const std::string& program,
                   const std::string& query, unsigned workers,
                   parallel::SchedulerKind sched,
                   parallel::ParallelOptions::SpillPolicy spill,
                   std::size_t max_nodes = 1'000'000,
                   std::size_t local_capacity = 8, bool adaptive = false,
                   bool claim_mailboxes = true) {
  engine::Interpreter ip;
  ip.consult_string(program);
  parallel::ParallelOptions po;
  po.workers = workers;
  po.update_weights = false;
  po.scheduler = sched;
  po.spill_policy = spill;
  po.limits.max_nodes = max_nodes;
  po.local_capacity = local_capacity;
  po.adaptive_capacity = adaptive;
  po.claim_mailboxes = claim_mailboxes;
  parallel::ParallelEngine pe(ip.program(), ip.weights(), &ip.builtins(), po);
  // Untimed warm-up: repopulates the pages the previous entry's teardown
  // returned to the OS, so the timed run measures the scheduler rather
  // than first-touch page faults.
  (void)pe.solve(ip.parse_query(query));
  const auto t0 = Clock::now();
  const auto r = pe.solve(ip.parse_query(query));
  Entry e;
  e.name = name;
  e.secs = seconds_since(t0);
  e.nodes = r.nodes_expanded;
  for (const auto& w : r.workers) {
    e.cells_copied += w.cells_copied;
    e.handles_published += w.handles_published;
    e.handles_reclaimed += w.handles_reclaimed;
    e.handles_granted += w.handles_granted;
    e.handles_migrated += w.handles_migrated;
  }
  e.solutions = r.solutions.size();
  e.has_sched = true;
  e.has_spill = spill == parallel::ParallelOptions::SpillPolicy::Lazy;
  e.lock_acquisitions = r.network.lock_acquisitions;
  e.steals = r.network.steals;
  e.steals_local = r.network.steals_local;
  e.steals_remote = r.network.steals_remote;
  e.claim_wait_spins = r.network.claim_wait_spins;
  e.claim_wait_us = r.network.claim_wait_us;
  e.mailbox_parked = r.network.mailbox_parked;
  e.mailbox_drained = r.network.mailbox_drained;
  e.stale_refreshes = r.network.stale_refreshes;
  return e;
}

// ----------------------------------------------------------------- service --
// Repeated-query mix over the workload programs: `clients` threads each
// issue `kRequestsPerClient` queries drawn from a small pool (so the repeat
// rate is high), against one shared QueryService. The serial-cold baseline
// solves the identical request multiset one by one on a bare Interpreter —
// no answer cache, no concurrency.

constexpr int kRequestsPerClient = 64;

std::string service_program() {
  return workloads::figure1_family() + workloads::layered_dag(5, 3);
}

const std::vector<std::string>& query_pool() {
  static const std::vector<std::string> pool = {
      "path(n0_0,Z,P)", "path(n0_1,Z,P)", "path(n0_2,Z,P)", "path(n1_0,Z,P)",
      "path(n1_1,Z,P)", "gf(sam,G)",      "gf(dan,G)",      "gf(X,Z)",
  };
  return pool;
}

/// Deterministic request mix for one client: index into the pool.
std::size_t pick(int client, int i) {
  return (static_cast<std::size_t>(client) * 31u +
          static_cast<std::size_t>(i) * 7u) %
         query_pool().size();
}

struct ServiceEntry {
  std::string name;
  unsigned clients = 0;
  std::size_t requests = 0;
  double secs = 0.0;
  double cache_hit_rate = 0.0;
  double repeat_rate = 0.0;
  double speedup_vs_serial_cold = 0.0;
  bool answers_match_cold = true;
  // Per-query wall latency from the service.latency_ms histogram
  // (interpolated percentiles; bench_compare.py gates these lower-better).
  double latency_p50_ms = 0.0;
  double latency_p95_ms = 0.0;
  double latency_p99_ms = 0.0;
  double latency_mean_ms = 0.0;

  [[nodiscard]] double qps() const {
    return secs > 0.0 ? static_cast<double>(requests) / secs : 0.0;
  }
};

double run_serial_cold(unsigned clients) {
  engine::Interpreter ip;
  ip.consult_string(service_program());
  search::SearchOptions o;
  o.update_weights = false;
  const auto t0 = Clock::now();
  for (unsigned c = 0; c < clients; ++c)
    for (int i = 0; i < kRequestsPerClient; ++i)
      ip.solve(query_pool()[pick(static_cast<int>(c), i)], o);
  return seconds_since(t0);
}

ServiceEntry run_service(unsigned clients, double serial_cold_qps) {
  service::ServiceOptions so;
  so.max_concurrent_queries = clients;
  so.update_weights = false;
  service::QueryService svc(so);
  svc.consult(service_program());

  std::vector<std::thread> threads;
  threads.reserve(clients);
  const auto t0 = Clock::now();
  for (unsigned c = 0; c < clients; ++c) {
    threads.emplace_back([&svc, c] {
      for (int i = 0; i < kRequestsPerClient; ++i)
        svc.query(query_pool()[pick(static_cast<int>(c), i)]);
    });
  }
  for (auto& t : threads) t.join();

  ServiceEntry e;
  e.name = "service_c" + std::to_string(clients);
  e.clients = clients;
  e.requests = static_cast<std::size_t>(clients) * kRequestsPerClient;
  e.secs = seconds_since(t0);
  const auto stats = svc.stats();
  e.cache_hit_rate = static_cast<double>(stats.cache_hits) /
                     static_cast<double>(e.requests);
  e.latency_p50_ms = stats.latency_p50_ms;
  e.latency_p95_ms = stats.latency_p95_ms;
  e.latency_p99_ms = stats.latency_p99_ms;
  e.latency_mean_ms = stats.latency_mean_ms;
  // Every request beyond a query's first occurrence is a repeat.
  std::vector<bool> seen(query_pool().size(), false);
  std::size_t repeats = 0;
  for (unsigned c = 0; c < clients; ++c)
    for (int i = 0; i < kRequestsPerClient; ++i) {
      const std::size_t q = pick(static_cast<int>(c), i);
      if (seen[q]) ++repeats;
      seen[q] = true;
    }
  e.repeat_rate = static_cast<double>(repeats) / static_cast<double>(e.requests);
  e.speedup_vs_serial_cold = serial_cold_qps > 0.0 ? e.qps() / serial_cold_qps : 0.0;

  // Cached answers must be byte-identical to a cold run's solution_texts.
  engine::Interpreter cold;
  cold.consult_string(service_program());
  for (const auto& q : query_pool()) {
    const auto warm = svc.query(q);
    if (!warm.from_cache ||
        warm.answers !=
            engine::solution_texts(cold.solve(q, {.update_weights = false})))
      e.answers_match_cold = false;
  }
  return e;
}

void write_service_json(const std::string& path,
                        const std::vector<ServiceEntry>& entries,
                        double serial_cold_qps,
                        const std::vector<std::pair<std::string, double>>&
                            summary = {}) {
  std::ofstream out(path);
  out << "{\n";
  write_host(out);
  for (const auto& [k, v] : summary) out << "  \"" << k << "\": " << v << ",\n";
  out << "  \"serial_cold\": {\"queries_per_sec\": " << serial_cold_qps
      << "},\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const ServiceEntry& e = entries[i];
    out << "  \"" << e.name << "\": {"
        << "\"clients\": " << e.clients << ", \"requests\": " << e.requests
        << ", \"seconds\": " << e.secs
        << ", \"queries_per_sec\": " << e.qps()
        << ", \"cache_hit_rate\": " << e.cache_hit_rate
        << ", \"repeat_rate\": " << e.repeat_rate
        << ", \"speedup_vs_serial_cold\": " << e.speedup_vs_serial_cold
        << ", \"latency_p50_ms\": " << e.latency_p50_ms
        << ", \"latency_p95_ms\": " << e.latency_p95_ms
        << ", \"latency_p99_ms\": " << e.latency_p99_ms
        << ", \"latency_mean_ms\": " << e.latency_mean_ms
        << ", \"answers_match_cold\": "
        << (e.answers_match_cold ? "true" : "false") << "}"
        << (i + 1 < entries.size() ? "," : "") << "\n";
  }
  out << "}\n";
  std::printf("wrote %s\n", path.c_str());
}

// ---------------------------------------------------------------- executor --
// The persistent-pool headline: the same 16-client mixed storm (queries
// drawn from the pool, all parallel requests, cache OFF so every request
// actually searches) served two ways — "spawn" is the legacy path
// (use_executor = false: every query spawns, pins and joins its own worker
// threads on the calling thread) and "pool" is the executor (workers
// created and pinned once; each query is an enqueued job). Identical
// request multisets, identical admission settings; the difference is
// per-query thread lifecycle cost, which is exactly what the executor
// removes. bench_compare gates pool_qps_speedup >= 2x and
// pool_p99_improvement >= 1 (pool p99 must not exceed spawn p99).

/// Short queries: per-request work is tens of microseconds, so the fixed
/// per-query cost — thread spawn/pin/join in legacy mode, one enqueue in
/// pool mode — is the measured quantity rather than search time.
const std::vector<std::string>& storm_pool() {
  static const std::vector<std::string> pool = {
      "gf(sam,G)", "gf(dan,G)", "gf(X,Z)", "f(X,Y)",
  };
  return pool;
}

ServiceEntry run_executor_storm(const std::string& name, bool use_pool,
                                unsigned clients) {
  service::ServiceOptions so;
  so.cache_enabled = false;  // measure execution, not the answer cache
  so.update_weights = false;
  so.max_concurrent_queries = 8;
  so.use_executor = use_pool;
  service::QueryService svc(so);
  svc.consult(service_program());

  std::vector<std::thread> threads;
  threads.reserve(clients);
  const auto t0 = Clock::now();
  for (unsigned c = 0; c < clients; ++c) {
    threads.emplace_back([&svc, c] {
      for (int i = 0; i < kRequestsPerClient; ++i) {
        service::QueryRequest req;
        req.text = storm_pool()[(static_cast<std::size_t>(c) * 31u +
                                 static_cast<std::size_t>(i) * 7u) %
                                storm_pool().size()];
        req.workers = 2;  // every request pays the spawn in legacy mode
        req.strategy = i % 3 == 0 ? search::Strategy::DepthFirst
                                  : search::Strategy::BestFirst;
        svc.query(req);
      }
    });
  }
  for (auto& t : threads) t.join();

  ServiceEntry e;
  e.name = name;
  e.clients = clients;
  e.requests = static_cast<std::size_t>(clients) * kRequestsPerClient;
  e.secs = seconds_since(t0);
  const auto stats = svc.stats();
  e.latency_p50_ms = stats.latency_p50_ms;
  e.latency_p95_ms = stats.latency_p95_ms;
  e.latency_p99_ms = stats.latency_p99_ms;
  e.latency_mean_ms = stats.latency_mean_ms;
  // Correctness bit: the storm's answers must match a cold interpreter.
  engine::Interpreter cold;
  cold.consult_string(service_program());
  for (const auto& q : storm_pool()) {
    if (svc.query(q).answers !=
        engine::solution_texts(cold.solve(q, {.update_weights = false})))
      e.answers_match_cold = false;
  }
  return e;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? std::string(argv[1]) + "/" : "";
  const std::string append =
      "append([],L,L). append([H|T],L,[H|R]) :- append(T,L,R).";
  const std::string dag = workloads::layered_dag(5, 3);

  std::vector<Entry> micro;
  micro.push_back(run_sequential("deep_recursion_dfs", workloads::nat_program(),
                                 workloads::deep_nat_query(400),
                                 search::Strategy::DepthFirst));
  micro.push_back(run_sequential(
      "append_all_splits_dfs", append,
      "append(X,Y,[1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16])",
      search::Strategy::DepthFirst));
  micro.push_back(run_sequential("dag_paths_bestfirst", dag, "path(n0_0,Z,P)",
                                 search::Strategy::BestFirst));
  micro.push_back(run_sequential("family_bestfirst", workloads::figure1_family(),
                                 "gf(sam,G)", search::Strategy::BestFirst));
  // Flight-recorder overhead: the same bounded deep-countdown expansion
  // loop with tracing off (the default null sink — must stay free) and
  // with a live ring attached. Best-of-3 per arm to shave scheduler
  // jitter; CI gates trace_overhead_ratio (traced / null nodes-per-sec)
  // at >= 0.95, the <= 5% acceptance bar.
  const auto run_traced_deep = [](const char* name, obs::TraceSink* sink) {
    const std::string deep_probe =
        "t(l). t(n(L,R)) :- t(L), t(R). probe :- t(T), fail.";
    engine::Interpreter ip;
    ip.consult_string(deep_probe);
    search::SearchOptions o;
    o.strategy = search::Strategy::DepthFirst;
    o.update_weights = false;
    o.limits.max_nodes = 120'000;
    o.trace = sink;
    Entry best;
    best.name = name;
    for (int rep = 0; rep < 3; ++rep) {
      const auto t0 = Clock::now();
      const auto r = ip.solve("probe", o);
      const double secs = seconds_since(t0);
      if (best.nodes == 0 || secs < best.secs) {
        best.secs = secs;
        best.nodes = r.stats.nodes_expanded;
        best.cells_copied = r.stats.expand.cells_copied;
        best.solutions = r.solutions.size();
      }
    }
    return best;
  };
  obs::TraceSink overhead_sink;
  micro.push_back(run_traced_deep("deep_countdown_trace_null", nullptr));
  micro.push_back(run_traced_deep("deep_countdown_trace_ring",
                                  &overhead_sink));
  std::vector<std::pair<std::string, double>> micro_summary;
  {
    const Entry& null_arm = micro[micro.size() - 2];
    const Entry& ring_arm = micro[micro.size() - 1];
    micro_summary.emplace_back(
        "trace_overhead_ratio",
        null_arm.nodes_per_sec() > 0.0
            ? ring_arm.nodes_per_sec() / null_arm.nodes_per_sec()
            : 0.0);
  }
  write_json(dir + "BENCH_micro.json", micro, micro_summary);

  // Compile-layer headline: ground fact lookups against a 4000-employee
  // deductive database. structural_scan is the engine as it stood before
  // this layer existed (every works_in/2 clause imported and unified per
  // expansion); indexed_structural adds the first-argument hash bucket
  // (one candidate) but still imports it; indexed_bytecode also rejects /
  // accepts heads via the WAM-lite code without importing. CI gates
  // fact_lookup_speedup (scan vs full hot path) at >= 10x and the
  // per-expansion unify-cell collapse at >= 25x.
  constexpr int kEmployees = 4000;
  constexpr int kDepartments = 16;
  constexpr int kLookups = 3000;
  const std::string company =
      workloads::deductive_db(kEmployees, kDepartments);
  std::vector<Entry> index;
  index.push_back(run_lookup_batch("fact_lookup_scan", company, kEmployees,
                                   kLookups, /*indexing=*/false,
                                   /*bytecode=*/false));
  index.push_back(run_lookup_batch("fact_lookup_indexed", company, kEmployees,
                                   kLookups, /*indexing=*/true,
                                   /*bytecode=*/false));
  index.push_back(run_lookup_batch("fact_lookup_bytecode", company, kEmployees,
                                   kLookups, /*indexing=*/true,
                                   /*bytecode=*/true));
  // Rejection cost with the bucket pinned wide open: an unbound first
  // argument defeats the index, so every candidate must be tried — the
  // regime where rejecting via bytecode instead of import-then-unify is
  // the whole difference.
  const auto run_dept_scan = [&company](const char* name, bool bytecode) {
    engine::Interpreter ip;
    ip.consult_string(company);
    search::SearchOptions o;
    o.strategy = search::Strategy::DepthFirst;
    o.update_weights = false;
    o.expander.head_bytecode = bytecode;
    Entry e;
    e.name = name;
    e.has_unify = true;
    // Several rounds over the departments: one sweep finishes in tens of
    // milliseconds, too short for a stable throughput gate.
    constexpr int kRounds = 8;
    e.queries = static_cast<std::size_t>(kRounds) * kDepartments;
    const auto t0 = Clock::now();
    for (int round = 0; round < kRounds; ++round) {
      for (int d = 0; d < kDepartments; ++d) {
        const auto r =
            ip.solve("works_in(E,d" + std::to_string(d) + ")", o);
        e.nodes += r.stats.nodes_expanded;
        e.cells_copied += r.stats.expand.cells_copied;
        e.unify_attempts += r.stats.expand.unify_attempts;
        e.unify_cells += r.stats.expand.unify_cells;
        e.solutions += r.solutions.size();
      }
    }
    e.secs = seconds_since(t0);
    return e;
  };
  index.push_back(run_dept_scan("dept_scan_structural", false));
  index.push_back(run_dept_scan("dept_scan_bytecode", true));
  std::vector<std::pair<std::string, double>> index_summary;
  {
    const Entry& scan = index[0];
    const Entry& idx = index[1];
    const Entry& bc = index[2];
    index_summary.emplace_back("fact_lookup_speedup",
                               bc.secs > 0.0 ? scan.secs / bc.secs : 0.0);
    index_summary.emplace_back("fact_lookup_speedup_index_only",
                               idx.secs > 0.0 ? scan.secs / idx.secs : 0.0);
    // Floor the denominator: a perfect bucket makes one attempt per
    // expansion and the bytecode visits a handful of cells for it.
    index_summary.emplace_back(
        "fact_lookup_unify_cells_reduction",
        scan.unify_cells_per_expansion() /
            std::max(bc.unify_cells_per_expansion(), 1e-3));
    index_summary.emplace_back(
        "fact_lookup_answers_match",
        scan.solutions == idx.solutions && scan.solutions == bc.solutions
            ? 1.0
            : 0.0);
    const Entry& ds = index[3];
    const Entry& db = index[4];
    index_summary.emplace_back("dept_scan_bytecode_speedup",
                               db.secs > 0.0 ? ds.secs / db.secs : 0.0);
  }
  write_json(dir + "BENCH_index.json", index, index_summary);

  // Static-analysis headline: the same ground point lookups with the
  // consult-time analysis on (all-ground fact buckets commit without
  // checkpoint or trail) vs forced off (every match trails its bindings
  // and rolls back). Same answers by construction — answers_match is the
  // hard correctness bit CI gates at 1.0 — and the trail-write collapse
  // (gated >= 5x) is the tentpole's acceptance bar.
  const auto run_analysis_arm = [&company](const char* name, bool analysis_on) {
    engine::Interpreter ip;
    ip.consult_string(company);
    search::SearchOptions o;
    o.strategy = search::Strategy::DepthFirst;
    o.update_weights = false;
    o.expander.static_analysis = analysis_on;
    Entry e;
    e.name = name;
    e.has_trail = true;
    e.queries = kLookups;
    const auto t0 = Clock::now();
    for (int i = 0; i < kLookups; ++i) {
      const auto r =
          ip.solve(workloads::deductive_db_lookup((i * 7919) % kEmployees), o);
      e.nodes += r.stats.nodes_expanded;
      e.cells_copied += r.stats.expand.cells_copied;
      e.trail_writes += r.stats.expand.trail_writes;
      e.solutions += r.solutions.size();
    }
    e.secs = seconds_since(t0);
    return e;
  };
  std::vector<Entry> analysis;
  analysis.push_back(run_analysis_arm("fact_lookup_analysis_off", false));
  analysis.push_back(run_analysis_arm("fact_lookup_analysis_on", true));
  std::vector<std::pair<std::string, double>> analysis_summary;
  {
    const Entry& off = analysis[0];
    const Entry& on = analysis[1];
    analysis_summary.emplace_back(
        "trail_write_reduction",
        static_cast<double>(off.trail_writes) /
            static_cast<double>(std::max<std::uint64_t>(1, on.trail_writes)));
    analysis_summary.emplace_back("answers_match",
                                  off.solutions == on.solutions ? 1.0 : 0.0);
    analysis_summary.emplace_back("analysis_on_speedup",
                                  on.secs > 0.0 ? off.secs / on.secs : 0.0);
  }
  write_json(dir + "BENCH_analysis.json", analysis, analysis_summary);

  // Old (single-lock GlobalFrontier) vs new (work-stealing) scheduler on
  // the wide-DAG and deep-recursion workloads, with lock/steal traffic.
  // The deep workload is an unbounded binary-tree recursion whose every
  // path is failed at the end ("..., fail"): no solutions to extract, so
  // it measures pure scheduler + expansion throughput under a fixed node
  // budget. local_capacity 2 keeps it scheduler-bound (every expansion
  // spills), which is exactly the traffic the rewrite targets.
  const std::string deep =
      "t(l). t(n(L,R)) :- t(L), t(R). probe :- t(T), fail.";
  constexpr std::size_t kDeepNodes = 60'000;
  constexpr std::size_t kDeepCapacity = 2;
  using Spill = parallel::ParallelOptions::SpillPolicy;
  // "_global" = the legacy stack exactly as PR 1 shipped it (single-lock
  // GlobalFrontier, eager spilling); "_steal" = the new stack (per-worker
  // deques with steal-half, spills materialized only under starvation).
  std::vector<Entry> par;
  for (const unsigned w : {1u, 2u, 4u, 8u}) {
    for (const auto [sched, spill, tag] :
         {std::tuple{parallel::SchedulerKind::GlobalFrontier, Spill::Eager,
                     "_global"},
          std::tuple{parallel::SchedulerKind::WorkStealing,
                     Spill::WhenStarving, "_steal"}}) {
      par.push_back(run_parallel("dag_w" + std::to_string(w) + tag, dag,
                                 "path(n0_0,Z,P)", w, sched, spill));
      par.push_back(run_parallel("deep_w" + std::to_string(w) + tag, deep,
                                 "probe", w, sched, spill, kDeepNodes,
                                 kDeepCapacity));
    }
  }
  // Headline ratios: work-stealing vs single-lock at 8 workers on the
  // deep-recursion workload (nodes/sec up, lock acquisitions down).
  std::vector<std::pair<std::string, double>> par_summary;
  {
    const Entry *global = nullptr, *steal = nullptr;
    for (const Entry& e : par) {
      if (e.name == "deep_w8_global") global = &e;
      if (e.name == "deep_w8_steal") steal = &e;
    }
    if (global && steal) {
      par_summary.emplace_back("deep_w8_steal_speedup",
                               global->nodes_per_sec() > 0.0
                                   ? steal->nodes_per_sec() / global->nodes_per_sec()
                                   : 0.0);
      par_summary.emplace_back(
          "deep_w8_lock_reduction",
          steal->lock_acquisitions > 0
              ? static_cast<double>(global->lock_acquisitions) /
                    static_cast<double>(steal->lock_acquisitions)
              : 0.0);
    }
  }
  write_json(dir + "BENCH_parallel.json", par, par_summary);

  // Copy-on-steal headline: eager spill materialization (the paper's
  // naive cost model surviving at the scheduler layer) vs lazy
  // SpillHandles + adaptive capacity (the new default stack), same deep
  // binary-countdown workload. local_capacity 2 makes every expansion
  // share, the worst case for eager copying; under lazy handles the copy
  // is paid only for chains a thief actually claims, so
  // cells_copied/expansion collapses while nodes/sec holds.
  std::vector<Entry> sp;
  for (const unsigned w : {1u, 2u, 4u, 8u}) {
    sp.push_back(run_parallel("deep_w" + std::to_string(w) + "_eager", deep,
                              "probe", w,
                              parallel::SchedulerKind::WorkStealing,
                              Spill::Eager, kDeepNodes, kDeepCapacity));
    sp.push_back(run_parallel("deep_w" + std::to_string(w) + "_lazy", deep,
                              "probe", w,
                              parallel::SchedulerKind::WorkStealing,
                              Spill::Lazy, kDeepNodes, kDeepCapacity,
                              /*adaptive=*/true));
  }
  std::vector<std::pair<std::string, double>> sp_summary;
  {
    const Entry *eager = nullptr, *lazy = nullptr;
    for (const Entry& e : sp) {
      if (e.name == "deep_w8_eager") eager = &e;
      if (e.name == "deep_w8_lazy") lazy = &e;
    }
    if (eager != nullptr && lazy != nullptr) {
      // Floor the lazy denominator: a run with zero thefts copies zero
      // cells, and the reduction would be infinite.
      sp_summary.emplace_back(
          "deep_w8_copy_reduction",
          eager->cells_per_expansion() /
              std::max(lazy->cells_per_expansion(), 1e-3));
      sp_summary.emplace_back("deep_w8_lazy_speedup",
                              eager->nodes_per_sec() > 0.0
                                  ? lazy->nodes_per_sec() / eager->nodes_per_sec()
                                  : 0.0);
    }
  }
  write_json(dir + "BENCH_spill.json", sp, sp_summary);

  // Locality-aware scheduling headline: the same deep binary-countdown
  // under copy-on-steal, with the legacy claim-wait spin vs claim-wait
  // mailboxes. Mailboxes eliminate the thief-side spin/sleep on claimed
  // handles by construction (claim_wait_spins collapses to ~0) while the
  // claim→deposit latency (claim_wait_us) overlaps useful scanning; the
  // local/remote steal split records how victim scans respect the node
  // topology (all-local on single-node hosts). Adaptivity is pinned off
  // so both modes see identical publish pressure.
  std::vector<Entry> numa;
  for (const unsigned w : {2u, 4u, 8u}) {
    for (const auto [mail, tag] :
         {std::pair{false, "_spin"}, std::pair{true, "_mailbox"}}) {
      Entry e = run_parallel("deep_w" + std::to_string(w) + tag, deep,
                             "probe", w, parallel::SchedulerKind::WorkStealing,
                             Spill::Lazy, kDeepNodes, kDeepCapacity,
                             /*adaptive=*/false, mail);
      e.has_numa = true;
      numa.push_back(e);
    }
  }
  std::vector<std::pair<std::string, double>> numa_summary;
  {
    const Entry *spin = nullptr, *mail = nullptr;
    std::uint64_t spin_all = 0, mail_all = 0;
    for (const Entry& e : numa) {
      if (e.name == "deep_w8_spin") spin = &e;
      if (e.name == "deep_w8_mailbox") mail = &e;
      (e.name.ends_with("_spin") ? spin_all : mail_all) += e.claim_wait_spins;
    }
    if (spin != nullptr && mail != nullptr) {
      // Floor the mailbox denominators: by construction they are ~0.
      numa_summary.emplace_back(
          "deep_w8_spin_reduction",
          static_cast<double>(spin->claim_wait_spins) /
              static_cast<double>(std::max<std::uint64_t>(
                  1, mail->claim_wait_spins)));
      // All worker counts pooled: this is what CI gates (>= 5x) — the w8
      // number alone rides on few enough claims that a quiet run could
      // dip under the floor without any code change.
      numa_summary.emplace_back(
          "spin_reduction_all",
          static_cast<double>(spin_all) /
              static_cast<double>(std::max<std::uint64_t>(1, mail_all)));
      numa_summary.emplace_back(
          "deep_w8_mailbox_speedup",
          spin->nodes_per_sec() > 0.0
              ? mail->nodes_per_sec() / spin->nodes_per_sec()
              : 0.0);
    }
  }
  write_json(dir + "BENCH_numa.json", numa, numa_summary);

  // Serving layer: queries/sec under concurrent clients with the answer
  // cache, against the serial-cold multiset-identical baseline (16 clients'
  // worth of requests).
  const double serial_secs = run_serial_cold(16);
  const double serial_qps = static_cast<double>(16 * kRequestsPerClient) /
                            (serial_secs > 0.0 ? serial_secs : 1e-9);
  std::vector<ServiceEntry> svc;
  for (const unsigned c : {1u, 4u, 16u}) svc.push_back(run_service(c, serial_qps));
  write_service_json(dir + "BENCH_service.json", svc, serial_qps);

  // Persistent pool vs spawn-per-query, identical 16-client storm.
  std::vector<ServiceEntry> exec_entries;
  exec_entries.push_back(
      run_executor_storm("storm_c16_spawn", /*use_pool=*/false, 16));
  exec_entries.push_back(
      run_executor_storm("storm_c16_pool", /*use_pool=*/true, 16));
  std::vector<std::pair<std::string, double>> exec_summary;
  {
    const ServiceEntry& spawn = exec_entries[0];
    const ServiceEntry& pool = exec_entries[1];
    exec_summary.emplace_back(
        "pool_qps_speedup", spawn.qps() > 0.0 ? pool.qps() / spawn.qps() : 0.0);
    // Floor the denominator: a sub-bucket pool p99 reads as 0.0 ms.
    exec_summary.emplace_back(
        "pool_p99_improvement",
        spawn.latency_p99_ms / std::max(pool.latency_p99_ms, 0.05));
    exec_summary.emplace_back(
        "storm_answers_match",
        spawn.answers_match_cold && pool.answers_match_cold ? 1.0 : 0.0);
  }
  write_service_json(dir + "BENCH_executor.json", exec_entries,
                     serial_qps, exec_summary);

  // Unified AND/OR scheduler (§7 riding §6's machinery): the sequential
  // andp path (per-group sequential engine solves) vs the unified
  // work-stealing path at w ∈ {1,2,8} on a balanced deductive-db
  // conjunction — two shared-variable semi-join groups of equal cost.
  // `and_or_w8_speedup` is the paper's processor-model speedup of the w8
  // unified run over the one-processor sequential cost (Σ group nodes /
  // critical-path nodes); wall-clock threading speedup is NOT gateable —
  // CI hosts may have a single core.
  std::vector<Entry> andor;
  std::vector<std::pair<std::string, double>> andor_summary;
  {
    const std::string prog = workloads::deductive_db(64, 4);
    const std::string query =
        "boss(A,M1), salary_band(A,S1), boss(B,M2), salary_band(B,S2)";
    engine::Interpreter seq;
    seq.consult_string(prog);
    search::SearchOptions so;
    so.update_weights = false;
    {
      const auto t0 = Clock::now();
      const auto r = seq.solve(query, so);
      Entry e;
      e.name = "seq_engine";
      e.secs = seconds_since(t0);
      e.nodes = r.stats.nodes_expanded;
      e.solutions = r.solutions.size();
      andor.push_back(e);
    }
    const auto expected = engine::solution_texts(seq.solve(query, so));

    bool match = true;
    double w8_speedup = 0.0, w8_join_ms = 0.0;
    const auto run_andor = [&](const std::string& name, unsigned workers,
                               bool unified) {
      engine::Interpreter ip;
      ip.consult_string(prog);
      andp::AndParallelOptions o;
      o.search.update_weights = false;
      o.unified = unified;
      o.workers = workers;
      const auto t0 = Clock::now();
      const auto res = andp::solve_and_parallel(ip, query, o);
      Entry e;
      e.name = name;
      e.secs = seconds_since(t0);
      e.nodes = res.sequential_nodes;
      e.solutions = res.solutions.size();
      match &= res.solutions == expected;
      if (unified && workers == 8) {
        w8_speedup = res.and_speedup();
        w8_join_ms = res.join_micros / 1000.0;
      }
      andor.push_back(e);
    };
    run_andor("andp_sequential", 1, /*unified=*/false);
    for (const unsigned w : {1u, 2u, 8u})
      run_andor("unified_w" + std::to_string(w), w, /*unified=*/true);
    andor_summary.emplace_back("answers_match", match ? 1.0 : 0.0);
    andor_summary.emplace_back("and_or_w8_speedup", w8_speedup);
    andor_summary.emplace_back("join_ms_w8", w8_join_ms);
  }
  write_json(dir + "BENCH_andor.json", andor, andor_summary);
  return 0;
}
