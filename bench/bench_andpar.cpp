// CL-ANDP (§7): AND-parallelism.
//
// Claims measured:
//  - independent conjunctions get an AND-speedup ≈ number of balanced
//    groups ("very effective in speeding up highly deterministic
//    programs");
//  - run-time analysis finds independence that is invisible at compile
//    time (bindings remove dependencies);
//  - the semi-join strategy for shared-variable conjunctions beats the
//    nested-loop combination;
//  - the unified work-stealing path (AND-groups and OR-alternatives as
//    work items of ONE scheduler partition) matches the pre-unification
//    per-group sequential path answer-for-answer while exposing the same
//    processor-model speedup to any number of workers.
#include <cstdio>
#include <string>

#include "blog/andp/exec.hpp"
#include "blog/support/table.hpp"
#include "blog/workloads/workloads.hpp"

using namespace blog;

namespace {

std::string fact_table(const char* name, int rows, int offset = 0) {
  std::string s;
  for (int i = 0; i < rows; ++i)
    s += std::string(name) + "(k" + std::to_string(i + offset) + ",v" +
         std::to_string(i) + ").\n";
  return s;
}

}  // namespace

int main() {
  std::printf("CL-ANDP (a): AND-speedup of independent conjunctions\n\n");
  Table t({"conjunction", "groups", "seq nodes", "critical path",
           "AND-speedup", "solutions"});
  {
    engine::Interpreter ip;
    ip.consult_string(workloads::figure1_family() + workloads::list_library() +
                      fact_table("t1", 20) + fact_table("t2", 20));
    const char* queries[] = {
        "gf(sam,G)",
        "gf(sam,G), append(X,Y,[1,2,3])",
        "gf(sam,G), append(X,Y,[1,2,3]), t1(K,V)",
        "gf(sam,G), append(X,Y,[1,2,3]), t1(K,V), t2(K2,V2)",
    };
    for (const char* q : queries) {
      const auto res = andp::solve_and_parallel(ip, q);
      t.add_row({q, std::to_string(res.groups.size()),
                 std::to_string(res.sequential_nodes),
                 std::to_string(res.critical_path_nodes),
                 Table::num(res.and_speedup()), std::to_string(res.solutions.size())});
    }
  }
  std::printf("%s\n", t.str().c_str());

  std::printf("CL-ANDP (b): semi-join vs nested loop on a shared-variable "
              "conjunction\n\n");
  Table t2({"rows/table", "overlap", "nested-loop comparisons",
            "semi-join probes", "join result"});
  for (const int rows : {50, 100, 200, 400}) {
    // r(X,Y), s(Y,Z) with ~10% key overlap.
    const int overlap = rows / 10;
    andp::Relation r{{intern("X"), intern("Y")}, {}};
    andp::Relation s{{intern("Y"), intern("Z")}, {}};
    for (int i = 0; i < rows; ++i) {
      r.rows.push_back({"x" + std::to_string(i), "k" + std::to_string(i)});
      s.rows.push_back(
          {"k" + std::to_string(i + rows - overlap), "z" + std::to_string(i)});
    }
    andp::JoinStats nl, sj;
    const auto a = nested_loop_join(r, s, &nl);
    const auto b = semi_join_then_join(r, s, &sj);
    t2.add_row({std::to_string(rows), std::to_string(overlap),
                std::to_string(nl.comparisons), std::to_string(sj.probes),
                std::to_string(a.rows.size()) + "==" +
                    std::to_string(b.rows.size())});
  }
  std::printf("%s\n", t2.str().c_str());

  std::printf("CL-ANDP (c): run-time bindings remove dependencies\n\n");
  {
    engine::Interpreter ip;
    ip.consult_string(fact_table("t1", 30) + fact_table("t2", 30));
    // Compile-time view: t1(K,V), t2(K,W) share K. With K bound at call
    // time the goals are independent (2 groups instead of 1).
    const auto shared = andp::solve_and_parallel(ip, "t1(K,V), t2(K,W)");
    const auto bound = andp::solve_and_parallel(ip, "t1(k3,V), t2(k3,W)");
    std::printf("  t1(K,V), t2(K,W)   : %zu group(s), %zu shared var(s)\n",
                shared.groups.size(), shared.shared_vars);
    std::printf("  t1(k3,V), t2(k3,W) : %zu group(s), %zu shared var(s)\n",
                bound.groups.size(), bound.shared_vars);
  }
  std::printf("CL-ANDP (d): unified work-stealing scheduler vs the "
              "pre-unification sequential path\n\n");
  Table t4({"path", "workers", "forked items", "join resolves", "join ms",
            "solutions", "model speedup"});
  {
    const std::string prog = workloads::deductive_db(64, 4);
    const std::string query =
        "boss(A,M1), salary_band(A,S1), boss(B,M2), salary_band(B,S2)";
    const auto row = [&](const char* path, unsigned workers, bool unified) {
      engine::Interpreter ip;
      ip.consult_string(prog);
      andp::AndParallelOptions o;
      o.search.update_weights = false;
      o.unified = unified;
      o.workers = workers;
      const auto res = andp::solve_and_parallel(ip, query, o);
      t4.add_row({path, std::to_string(workers),
                  std::to_string(res.forked_items),
                  std::to_string(res.join_resolves),
                  Table::num(res.join_micros / 1000.0),
                  std::to_string(res.solutions.size()),
                  Table::num(res.and_speedup())});
    };
    row("sequential", 1, /*unified=*/false);
    for (const unsigned w : {1u, 2u, 8u}) row("unified", w, /*unified=*/true);
  }
  std::printf("%s\n", t4.str().c_str());

  std::printf(
      "\nexpected shape: speedup tracks the number of balanced groups (→4x\n"
      "with four similar goals); semi-join probes grow linearly with the\n"
      "input while nested-loop comparisons grow quadratically, with equal\n"
      "results; grounding the shared variable at run time splits the\n"
      "conjunction into independent groups (§7's run-time analysis); the\n"
      "unified scheduler forks one work item per semi-join goal, resolves\n"
      "each join exactly once, and reports the same model speedup as the\n"
      "sequential path at every worker count.\n");
  return 0;
}
