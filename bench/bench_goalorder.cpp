// ABL-ORDER: goal-selection ablation.
//
// The paper's §2 search model picks the next graph to search freely
// ("traversing from this new leaf towards the root, we collect all unused
// graphs"); our engine defaults to Prolog's leftmost rule. This ablation
// compares leftmost vs smallest-fanout (first-fail) vs cheapest-pointer
// selection on conjunctive workloads.
#include <cstdio>

#include "blog/engine/interpreter.hpp"
#include "blog/support/table.hpp"
#include "blog/workloads/workloads.hpp"

using namespace blog;

namespace {

std::size_t run(const std::string& program, const std::string& query,
                search::GoalOrder order, bool adapt) {
  engine::Interpreter ip;
  ip.consult_string(program);
  search::SearchOptions o;
  o.expander.goal_order = order;
  o.expander.max_depth = 256;
  if (adapt) (void)ip.solve(query, o);
  return ip.solve(query, o).stats.nodes_expanded;
}

}  // namespace

int main() {
  Rng rng(23);
  struct Case {
    const char* name;
    std::string program;
    std::string query;
  };
  const std::vector<Case> cases = {
      {"det-first join", "many(1). many(2). many(3). many(4). many(5). "
                         "one(a). q(X,Y) :- many(X), one(Y).",
       "q(X,Y)"},
      {"family x list", workloads::figure1_family() + workloads::list_library(),
       "gf(X,Z), member(M,[a,b])"},
      {"map color 7r3c", workloads::map_coloring(rng, 7, 3, 2),
       "coloring(A,B,C,D,E,F,G)"},
      {"two joins", workloads::figure1_family(),
       "f(X,Y), m(W,Z), f(Y,Q)"},
  };

  std::printf("ABL-ORDER: nodes expanded (all solutions), by goal-selection "
              "policy\n\n");
  Table t({"workload", "leftmost", "smallest fanout", "cheapest pointer",
           "cheapest (adapted)"});
  for (const auto& c : cases) {
    t.add_row({c.name,
               std::to_string(run(c.program, c.query, search::GoalOrder::Leftmost, false)),
               std::to_string(run(c.program, c.query, search::GoalOrder::SmallestFanout, false)),
               std::to_string(run(c.program, c.query, search::GoalOrder::CheapestPointer, false)),
               std::to_string(run(c.program, c.query, search::GoalOrder::CheapestPointer, true))});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf(
      "expected shape: smallest-fanout (first-fail) never loses badly and\n"
      "wins when a deterministic goal can prune a wide one; cheapest-pointer\n"
      "approaches it once weights are adapted. All policies return identical\n"
      "solution sets (tested in tests/extensions_test.cpp).\n");
  return 0;
}
