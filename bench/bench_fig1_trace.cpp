// FIG1: regenerate the paper's Figure 1 — the Prolog execution trace of
// ?- gf(sam,G) on the family database, step by step, exactly the three
// resolution steps the paper walks through plus the backtracking tail.
#include <cstdio>

#include "blog/engine/interpreter.hpp"
#include "blog/term/writer.hpp"
#include "blog/workloads/workloads.hpp"

using namespace blog;

int main() {
  engine::Interpreter ip;
  ip.consult_string(workloads::figure1_family());

  std::printf("FIG1: Prolog (depth-first) execution of ?- gf(sam,G).\n\n");
  std::printf("database: %zu clauses (%zu weighted pointers in the Figure-4 "
              "image)\n\n",
              ip.program().size(), ip.program().pointer_count());

  search::SearchObserver obs;
  int step = 0;
  obs.on_pop = [&](const search::Node& n) {
    std::string goals;
    for (const auto& g : n.goals) {
      if (!goals.empty()) goals += ", ";
      goals += term::to_string(n.store, g.term);
    }
    std::printf("step %2d  depth %u  ?- %s\n", ++step, n.depth,
                goals.empty() ? "<solution>" : goals.c_str());
  };
  obs.on_solution = [&](const search::Node& n) {
    std::printf("         => solution: %s\n",
                search::solution_text(n.store, n.answer).c_str());
  };
  obs.on_failure = [&](const search::Node& n) {
    (void)n;
    std::printf("         => fails (no matching clause), backtrack\n");
  };

  search::SearchOptions opts;
  opts.strategy = search::Strategy::DepthFirst;
  const auto r = ip.solve("gf(sam,G)", opts, &obs);

  std::printf("\npaper's trace: gf(sam,G) -> f(sam,Y),f(Y,G) -> f(larry,G) "
              "-> G=den (then doug; the m(larry,G) branch fails)\n");
  std::printf("result: %zu solutions, %zu nodes, %zu failures — matches the "
              "Figure 3 tree (2 solutions, 1 failure).\n",
              r.solutions.size(), r.stats.nodes_expanded, r.stats.failures);
  return 0;
}
