// CL-SESSION (§5): "Especially where a user tries a second and third query
// that is similar to the first one with some minor changes, later searches
// should become more efficient."  And the conservative end-of-session merge
// "will provide an improved initial condition at the beginning of the new
// session."
//
// Measured: nodes to first solution across a session of similar queries;
// the cost of session 2 with and without merging session 1.
#include <cstdio>

#include "blog/engine/interpreter.hpp"
#include "blog/support/table.hpp"
#include "blog/workloads/workloads.hpp"

using namespace blog;

namespace {

std::vector<std::string> session_queries(int couples) {
  std::vector<std::string> qs;
  for (int c = 0; c < couples && c < 6; ++c)
    qs.push_back("gf(p0_" + std::to_string(2 * c) + ",G)");
  qs.push_back(qs.front());  // the user retries the first query
  return qs;
}

std::vector<std::size_t> run_session(engine::Interpreter& ip,
                                     const std::vector<std::string>& qs) {
  std::vector<std::size_t> nodes;
  search::SearchOptions opts;
  opts.strategy = search::Strategy::BestFirst;
  opts.limits.max_solutions = 1;
  for (const auto& q : qs) nodes.push_back(ip.solve(q, opts).stats.nodes_expanded);
  return nodes;
}

}  // namespace

int main() {
  Rng rng(42);
  const std::string family = workloads::random_family(rng, 5, 4);
  const auto qs = session_queries(4);

  std::printf("CL-SESSION: a session of similar queries (generated family "
              "database)\n\n");

  engine::Interpreter ip;
  ip.consult_string(family);
  ip.begin_session();
  const auto s1 = run_session(ip, qs);
  ip.end_session();
  ip.begin_session();
  const auto s2_merged = run_session(ip, qs);
  ip.end_session();

  engine::Interpreter ip2;
  ip2.consult_string(family);
  ip2.begin_session();
  (void)run_session(ip2, qs);
  ip2.begin_session();  // discard instead of merging
  const auto s2_cold = run_session(ip2, qs);

  Table t({"query", "session 1", "session 2 (merged)", "session 2 (discarded)"});
  std::size_t tot1 = 0, tot2m = 0, tot2c = 0;
  for (std::size_t i = 0; i < qs.size(); ++i) {
    t.add_row({qs[i], std::to_string(s1[i]), std::to_string(s2_merged[i]),
               std::to_string(s2_cold[i])});
    tot1 += s1[i];
    tot2m += s2_merged[i];
    tot2c += s2_cold[i];
  }
  t.add_row({"TOTAL", std::to_string(tot1), std::to_string(tot2m),
             std::to_string(tot2c)});
  std::printf("%s\n", t.str().c_str());

  std::printf(
      "expected shape: repeats inside session 1 get cheaper (the retry of\n"
      "%s costs no more than its first run); session 2 with the merged\n"
      "global weights totals <= the discarded-weights rerun.\n",
      qs.front().c_str());
  return 0;
}
