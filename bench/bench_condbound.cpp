// ABL-COND: conditional weights (§5 future work).
//
// "For example, conditional probabilities (conditional information) might
// be added to the model, since a decision should depend on what has been
// previously decided."
//
// Workload: a predicate whose clause choice is good or bad depending on
// the *caller's* earlier decision. Unconditional pointer weights whipsaw
// between the two contexts; conditional weights learn both.
#include <cstdio>

#include "blog/engine/interpreter.hpp"
#include "blog/support/table.hpp"

using namespace blog;

namespace {

/// The `second` choice is only correct relative to the `first` decision
/// made one arc earlier in the same shared clause:
///
///   go(X) :- first(X,Y), second(Y).
///   first(k0,v0). first(k1,v1). ...     % context facts
///   second(Y) :- pick0(Y).  ...         % n alternatives, one per context
///   pick_i(v_i).
///
/// All queries route through the single `go` clause, so the unconditional
/// pointer key (go, literal 1, second_i) is shared across contexts — one
/// global weight cannot fit every caller. The conditional key adds the
/// parent arc (the `first` fact chosen), separating the contexts.
std::string context_program(int contexts) {
  std::string s = "go(X) :- first(X,Y), second(Y).\n";
  for (int k = 0; k < contexts; ++k)
    s += "first(k" + std::to_string(k) + ",v" + std::to_string(k) + ").\n";
  for (int i = contexts - 1; i >= 0; --i)
    s += "second(Y) :- pick" + std::to_string(i) + "(Y).\n";
  for (int i = 0; i < contexts; ++i)
    s += "pick" + std::to_string(i) + "(v" + std::to_string(i) + ").\n";
  return s;
}

std::size_t alternating_cost(int contexts, int rounds, bool conditional) {
  engine::Interpreter ip;
  ip.consult_string(context_program(contexts));
  search::SearchOptions o;
  o.expander.conditional_weights = conditional;
  o.limits.max_solutions = 1;
  std::size_t total = 0;
  // Warm-up round, then measured rounds alternating across all contexts.
  for (int k = 0; k < contexts; ++k)
    (void)ip.solve("go(k" + std::to_string(k) + ")", o);
  for (int r = 0; r < rounds; ++r) {
    for (int k = 0; k < contexts; ++k) {
      total +=
          ip.solve("go(k" + std::to_string(k) + ")", o).stats.nodes_expanded;
    }
  }
  return total;
}

}  // namespace

int main() {
  std::printf("ABL-COND: alternating context-dependent queries, nodes to "
              "first solution (4 measured rounds)\n\n");
  Table t({"contexts", "unconditional", "conditional", "ratio"});
  for (const int c : {2, 4, 8}) {
    const auto uncond = alternating_cost(c, 4, false);
    const auto cond = alternating_cost(c, 4, true);
    t.add_row({std::to_string(c), std::to_string(uncond), std::to_string(cond),
               Table::num(static_cast<double>(uncond) /
                          static_cast<double>(cond))});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf(
      "expected shape: with unconditional weights the shared predicate's\n"
      "pointers carry one global estimate that cannot fit every caller, so\n"
      "alternating queries keep re-exploring; conditional weights separate\n"
      "the contexts and converge per caller — the paper's anticipated\n"
      "benefit, at the database-size cost it also anticipates (one weight\n"
      "per context).\n");
  return 0;
}
