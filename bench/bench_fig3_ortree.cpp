// FIG2/3: regenerate the Figure 3 OR-tree of ?- gf(sam,G): every complete
// chain with its arcs, and the §4 worked weight example (both solutions get
// probability 1/2 => weight sum log2(2) = 1 per solution chain; the failed
// chain carries an infinite arc).
#include <cstdio>

#include "blog/support/table.hpp"
#include "blog/theory/chains.hpp"
#include "blog/theory/weights.hpp"
#include "blog/workloads/workloads.hpp"

using namespace blog;

int main() {
  engine::Interpreter ip;
  ip.consult_string(workloads::figure1_family());

  const auto tree = theory::enumerate_chains(ip, "gf(sam,G)");
  std::printf("FIG3: OR-tree of ?- gf(sam,G)\n\n");

  Table t({"chain", "outcome", "arcs (caller/literal->clause)"});
  int i = 0;
  for (const auto& c : tree.chains) {
    std::string arcs;
    for (const auto& k : c.arcs) {
      if (!arcs.empty()) arcs += "  ";
      const std::string caller = k.caller == db::kQueryClause
                                     ? "query"
                                     : "c" + std::to_string(k.caller);
      arcs += caller + "/" + std::to_string(k.literal) + "->" +
              ip.program().clause(k.callee).to_string();
    }
    t.add_row({std::to_string(++i), c.success ? "SOLUTION" : "failure", arcs});
  }
  std::printf("%s\n", t.str().c_str());

  const auto w = theory::solve_theoretical(tree);
  std::printf("paper: 2 solutions, 1 failure; measured: %zu solutions, %zu "
              "failures\n",
              tree.solutions, tree.failures);
  std::printf("§4 worked example: every solution chain bound = log2(S) = %g\n",
              w.target_bound);
  Table tw({"arc", "theoretical weight"});
  for (const auto& [k, wt] : w.finite) {
    const std::string caller = k.caller == db::kQueryClause
                                   ? "query"
                                   : "c" + std::to_string(k.caller);
    tw.add_row({caller + "/" + std::to_string(k.literal) + "->c" +
                    std::to_string(k.callee),
                Table::num(wt, 3)});
  }
  std::printf("%s", tw.str().c_str());
  std::printf("(any solution of the N-equations-in-M-unknowns system is "
              "valid; we report the minimum-norm one. residual %.2e)\n",
              w.residual);
  return 0;
}
