// CL-PAR (§6/§7): OR-parallel speedup.
//
// "OR-parallelism is specially effective in speeding up non-deterministic
// programs, specially when more than one solution is needed."
//
// Measured: simulated makespan (machine simulator) for NP in {1..64} on a
// multi-solution path workload, plus a thread-engine sanity run showing the
// same solution set on real threads.
#include <cstdio>

#include "blog/machine/sim.hpp"
#include "blog/parallel/engine.hpp"
#include "blog/support/table.hpp"
#include "blog/workloads/workloads.hpp"

using namespace blog;

int main() {
  const std::string dag = workloads::layered_dag(5, 3);
  const char* query = "path(n0_0,Z,P)";

  std::printf("CL-PAR: simulated speedup of the B-LOG machine "
              "(all paths in a 5x3 DAG)\n\n");
  Table t({"processors", "makespan", "speedup", "efficiency", "utilization"});
  double base = 0.0;
  for (const unsigned np : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    engine::Interpreter ip;
    ip.consult_string(dag);
    machine::MachineConfig cfg;
    cfg.processors = np;
    cfg.tasks_per_processor = 2;
    cfg.update_weights = false;
    cfg.local_memory_blocks = 32;
    machine::MachineSim sim(ip.program(), ip.weights(), &ip.builtins(), cfg);
    const auto rep = sim.run(ip.parse_query(query));
    if (base == 0.0) base = rep.makespan;
    const double speedup = base / rep.makespan;
    t.add_row({std::to_string(np), Table::num(rep.makespan, 0),
               Table::num(speedup), Table::num(speedup / np, 3),
               Table::num(rep.utilization(), 2)});
  }
  std::printf("%s\n", t.str().c_str());

  std::printf("thread-engine sanity (same workload, real std::thread "
              "workers):\n\n");
  Table t2({"workers", "solutions", "nodes expanded"});
  for (const unsigned w : {1u, 4u}) {
    engine::Interpreter ip;
    ip.consult_string(dag);
    parallel::ParallelOptions po;
    po.workers = w;
    po.update_weights = false;
    parallel::ParallelEngine pe(ip.program(), ip.weights(), &ip.builtins(), po);
    const auto r = pe.solve(ip.parse_query(query));
    t2.add_row({std::to_string(w), std::to_string(r.solutions.size()),
                std::to_string(r.nodes_expanded)});
  }
  std::printf("%s\n", t2.str().c_str());
  std::printf(
      "expected shape: near-linear speedup while the frontier is wider than\n"
      "the machine, flattening once NP approaches the tree's usable width\n"
      "(the paper's scheduling caveat: \"the scheduling problem makes it\n"
      "impossible to always use the total number of processors\").  The\n"
      "thread engine finds the identical solution set at every worker "
      "count.\n");
  return 0;
}
