// CL-MINNET (§3/§6): "A sorting network is costly ... instead, a circuit
// that determines the minimum, and a priority circuit to arbitrate among
// several waiting processors ... would be adequate."
//
// Measured: comparator counts and circuit depths of Batcher's sorting
// network vs the tree min-circuit across machine sizes, plus the measured
// grant rate of the minimum-seeking network during a simulated run (is a
// full sort ever needed? the paper argues the network is "lightly used").
#include <cstdio>

#include "blog/machine/sim.hpp"
#include "blog/support/table.hpp"
#include "blog/workloads/workloads.hpp"

using namespace blog;

int main() {
  std::printf("CL-MINNET: Batcher sorting network vs tree min-circuit\n\n");
  Table t({"inputs n", "Batcher comparators", "Batcher depth",
           "min-tree comparators", "min-tree depth"});
  for (const unsigned n : {4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
    const machine::BatcherModel b{.inputs = n};
    const machine::MinNetModel m{.leaves = n, .per_level = 1.0};
    t.add_row({std::to_string(n), std::to_string(b.comparators()),
               std::to_string(b.depth()), std::to_string(m.comparators()),
               std::to_string(m.levels())});
  }
  std::printf("%s\n", t.str().c_str());

  std::printf("network usage during a simulated run (16 processors):\n\n");
  engine::Interpreter ip;
  ip.consult_string(workloads::layered_dag(5, 3));
  machine::MachineConfig cfg;
  cfg.processors = 16;
  cfg.tasks_per_processor = 2;
  cfg.update_weights = false;
  machine::MachineSim sim(ip.program(), ip.weights(), &ip.builtins(), cfg);
  const auto rep = sim.run(ip.parse_query("path(n0_0,Z,P)"));
  const double grants_per_kcycle =
      rep.makespan > 0 ? 1000.0 * static_cast<double>(rep.minnet_grants) /
                             rep.makespan
                       : 0.0;
  std::printf("min-net grants: %llu over %.0f cycles = %.1f grants/kcycle\n",
              static_cast<unsigned long long>(rep.minnet_grants), rep.makespan,
              grants_per_kcycle);
  std::printf(
      "\nexpected shape: Batcher grows n/4·log2(n)·(log2(n)+1) comparators\n"
      "(672 at n=64) while the min tree is linear (63 at n=64) and\n"
      "shallower; and the measured grant rate shows each processor consults\n"
      "the network far less than once per cycle — \"the sorting network ...\n"
      "is probably lightly used\", so the cheap circuit suffices.\n");
  return 0;
}
