// CL-COPY (§6): "a multitasked processor will spend a lot of time copying
// data received from the disk, and data in its own memory, as new chains in
// the search tree are sprouted. ... the processor memory should be designed
// to write multiply."
//
// Measured: the share of unit-busy cycles spent copying, and the makespan /
// copy-cycle curve as the multi-write width grows.
#include <cstdio>

#include "blog/machine/sim.hpp"
#include "blog/support/table.hpp"
#include "blog/workloads/workloads.hpp"

using namespace blog;

int main() {
  const std::string dag = workloads::layered_dag(4, 4);
  const char* query = "path(n0_0,Z,P)";

  std::printf("CL-COPY: copying dominates; multi-write memory mitigates\n\n");
  Table t({"write width", "makespan", "copy cycles", "copy share",
           "speedup vs w=1"});
  double base = 0.0;
  for (const unsigned w : {1u, 2u, 4u, 8u, 16u, 32u}) {
    engine::Interpreter ip;
    ip.consult_string(dag);
    machine::MachineConfig cfg;
    cfg.processors = 4;
    cfg.tasks_per_processor = 4;
    cfg.update_weights = false;
    cfg.copy.write_width = w;
    machine::MachineSim sim(ip.program(), ip.weights(), &ip.builtins(), cfg);
    const auto rep = sim.run(ip.parse_query(query));
    if (base == 0.0) base = rep.makespan;
    t.add_row({std::to_string(w), Table::num(rep.makespan, 0),
               Table::num(rep.copy_cycles, 0), Table::num(rep.copy_share(), 2),
               Table::num(base / rep.makespan)});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf(
      "expected shape: at width 1 copying is the biggest single consumer of\n"
      "unit cycles (the §6 bottleneck observation, a consequence of \"the\n"
      "very peculiar character of the logic variable\"); widening the\n"
      "multi-write memory collapses copy cycles roughly linearly until\n"
      "unify becomes the limiter and returns diminish.\n");
  return 0;
}
