// CL-STRAT: depth-first vs breadth-first vs best-first (§3).
//
// The paper's argument:
//  - depth-first "does not lend itself easily to parallel processing" and
//    pays for wrong turns;
//  - breadth-first "tends to work near the root of the tree, doing extra
//    work before a solution is found";
//  - best-first guided by adapted weights reaches solutions with the least
//    work.
// Measured: nodes expanded to the FIRST solution (fresh weights and adapted
// weights) and peak frontier size, across workloads.
#include <cstdio>

#include "blog/engine/interpreter.hpp"
#include "blog/support/table.hpp"
#include "blog/workloads/workloads.hpp"

using namespace blog;

namespace {

struct Workload {
  const char* name;
  std::string program;
  std::string query;
  std::uint32_t max_depth = 128;
};

std::size_t first_solution_nodes(const Workload& w, search::Strategy s,
                                 int warm_runs, std::size_t* frontier) {
  engine::Interpreter ip;
  ip.consult_string(w.program);
  search::SearchOptions warm;
  warm.strategy = search::Strategy::DepthFirst;
  warm.expander.max_depth = w.max_depth;
  for (int i = 0; i < warm_runs; ++i) (void)ip.solve(w.query, warm);

  search::SearchOptions opts;
  opts.strategy = s;
  opts.limits.max_solutions = 1;
  opts.expander.max_depth = w.max_depth;
  const auto r = ip.solve(w.query, opts);
  if (frontier) *frontier = r.stats.max_frontier;
  return r.stats.nodes_expanded;
}

}  // namespace

int main() {
  Rng rng(7);
  std::vector<Workload> workloads;
  workloads.push_back({"family gf (fig1)", workloads::figure1_family(),
                       "gf(sam,G)"});
  workloads.push_back({"needle d8 f3", workloads::needle_tree(rng, 8, 3),
                       "goal0"});
  workloads.push_back({"needle d10 f4", workloads::needle_tree(rng, 10, 4),
                       "goal0"});
  workloads.push_back({"dag paths 4x3", workloads::layered_dag(4, 3),
                       "path(n0_0,n4_0,P)"});
  workloads.push_back({"map color 8r3c",
                       workloads::map_coloring(rng, 8, 3, 3),
                       "coloring(A,B,C,D,E,F,G,H)"});
  workloads.push_back({"queens5", workloads::queens(5), "queens5(Qs)", 256});

  std::printf("CL-STRAT: nodes expanded to the first solution\n\n");
  Table t({"workload", "DF cold", "BF cold", "best cold", "best adapted",
           "best adapted frontier"});
  for (const auto& w : workloads) {
    std::size_t frontier = 0;
    const auto df = first_solution_nodes(w, search::Strategy::DepthFirst, 0, nullptr);
    const auto bf = first_solution_nodes(w, search::Strategy::BreadthFirst, 0, nullptr);
    const auto best_cold =
        first_solution_nodes(w, search::Strategy::BestFirst, 0, nullptr);
    const auto best_adapted =
        first_solution_nodes(w, search::Strategy::BestFirst, 1, &frontier);
    t.add_row({w.name, std::to_string(df), std::to_string(bf),
               std::to_string(best_cold), std::to_string(best_adapted),
               std::to_string(frontier)});
  }
  std::printf("%s\n", t.str().c_str());
  std::printf(
      "expected shape: adapted best-first <= depth-first on workloads with\n"
      "failing branches (needle trees, coloring); breadth-first pays the\n"
      "biggest frontier (\"works near the root\").  After one exhaustive\n"
      "run the weights steer best-first straight to a solution (§5's\n"
      "adaptive control strategy).\n");
  return 0;
}
