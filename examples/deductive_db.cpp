// A deductive-database scenario: the kind of workload the paper's database
// machine targets — a large fact base on semantic paging disks, rule-based
// views queried repeatedly within a session, AND-parallel conjunctions.
//
// Synthetic "company" database: employees, departments, managers; views
// for reporting chains and co-worker relations.
#include <cstdio>

#include "blog/andp/exec.hpp"
#include "blog/support/rng.hpp"
#include "blog/spd/array.hpp"
#include "blog/support/table.hpp"
#include "blog/trace/tree.hpp"

using namespace blog;

namespace {

std::string company_db(Rng& rng, int departments, int staff_per_dept) {
  std::string s;
  // Schema: works_in(Emp,Dept), manages(Mgr,Dept), salary_band(Emp,Band).
  for (int d = 0; d < departments; ++d) {
    const std::string dept = "dept" + std::to_string(d);
    s += "manages(mgr" + std::to_string(d) + "," + dept + ").\n";
    for (int e = 0; e < staff_per_dept; ++e) {
      const std::string emp =
          "emp" + std::to_string(d) + "_" + std::to_string(e);
      s += "works_in(" + emp + "," + dept + ").\n";
      s += "salary_band(" + emp + ",band" +
           std::to_string(rng.below(3)) + ").\n";
    }
  }
  // Views.
  s += "boss(E,M) :- works_in(E,D), manages(M,D).\n";
  s += "coworkers(A,B) :- works_in(A,D), works_in(B,D), A \\= B.\n";
  s += "same_band(A,B) :- salary_band(A,S), salary_band(B,S), A \\= B.\n";
  return s;
}

}  // namespace

int main() {
  Rng rng(2085);
  const std::string db = company_db(rng, 6, 5);

  engine::Interpreter ip;
  ip.consult_string(db);
  std::printf("deductive database: %zu clauses, %zu Figure-4 pointers\n\n",
              ip.program().size(), ip.program().pointer_count());

  // --- the database fits on an SPD array --------------------------------
  spd::SpdConfig scfg;
  scfg.sps = 4;
  scfg.blocks_per_track = 8;
  spd::SpdArray disks(spd::build_blocks(ip.program(), ip.weights()), scfg);
  // Page in the boss/2 view clause and everything it can resolve to.
  const db::ClauseId boss_view =
      ip.program().candidates(db::Pred{intern("boss"), 2}).front();
  const auto page = disks.page_in({boss_view}, 1);
  std::printf("paging the boss/2 view's Hamming-1 ball: %zu blocks in %.0f "
              "disk cycles\n\n",
              page.blocks.size(), page.elapsed);

  // --- a reporting session ----------------------------------------------
  std::printf("a reporting session (best-first, adaptive weights):\n\n");
  Table t({"query", "answers", "nodes"});
  ip.begin_session();
  for (const char* q :
       {"boss(emp2_1,M)", "boss(emp2_3,M)", "boss(E,mgr2)", "boss(emp2_1,M)"}) {
    const auto r = ip.solve(q);
    t.add_row({q, std::to_string(r.solutions.size()),
               std::to_string(r.stats.nodes_expanded)});
  }
  ip.end_session();
  std::printf("%s\n", t.str().c_str());

  // --- AND-parallel analytics -------------------------------------------
  const auto res = andp::solve_and_parallel(
      ip, "works_in(A,dept1), salary_band(B,band0)");
  std::printf("AND-parallel conjunction (independent goals): %zu answers, "
              "%zu groups, speedup %.2fx\n\n",
              res.solutions.size(), res.groups.size(), res.and_speedup());

  // --- draw one query's OR-tree ------------------------------------------
  trace::TreeRecorder rec;
  auto obs = rec.observer();
  engine::Interpreter fresh;
  fresh.consult_string(db);
  (void)fresh.solve("boss(emp0_0,M)", {}, &obs);
  std::printf("OR-tree of boss(emp0_0,M):\n%s", rec.render_text().c_str());
  return 0;
}
