// OR-parallel search on real threads: the §6 machine behaviour (local
// frontiers, minimum-seeking network, threshold D) on a path-enumeration
// workload, plus the AND-parallel executor of §7 on an independent
// conjunction.
//
// With `--trace <file>` the worker-count sweep runs with the flight
// recorder attached and exports a Chrome/Perfetto trace (one lane per
// worker, one async span per solve) to <file>; CI validates it with
// tools/trace_summary.py and fails on dropped events.
#include <cstdio>
#include <cstring>
#include <string>

#include "blog/andp/exec.hpp"
#include "blog/obs/chrome_trace.hpp"
#include "blog/parallel/engine.hpp"
#include "blog/support/table.hpp"
#include "blog/workloads/workloads.hpp"

using namespace blog;

int main(int argc, char** argv) {
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc)
      trace_path = argv[++i];
  }

  const std::string dag = workloads::layered_dag(5, 3);
  obs::TraceSink sink;
  obs::TraceSink* const trace = trace_path.empty() ? nullptr : &sink;

  std::printf("OR-parallelism: all paths from n0_0 in a 5x3 layered DAG\n\n");
  Table t({"workers", "solutions", "nodes", "network takes", "spills"});
  std::uint32_t qid = 0;
  for (const unsigned workers : {1u, 2u, 4u, 8u}) {
    engine::Interpreter ip;
    ip.consult_string(dag);
    parallel::ParallelOptions po;
    po.workers = workers;
    po.update_weights = false;
    po.trace = trace;
    if (trace != nullptr) {
      // Tiny private pools + lazy spill: guarantee steal/spill/mailbox
      // traffic so the exported trace shows the machinery, not idle lanes.
      po.local_capacity = 1;
      po.spill_policy = parallel::ParallelOptions::SpillPolicy::Lazy;
    }
    parallel::ParallelEngine pe(ip.program(), ip.weights(), &ip.builtins(), po);
    obs::trace(trace, obs::client_lane(), obs::EventKind::kQueryBegin, ++qid);
    const auto r = pe.solve(ip.parse_query("path(n0_0,Z,P)"));
    obs::trace(trace, obs::client_lane(), obs::EventKind::kQueryEnd, qid);
    std::uint64_t net = 0, spills = 0;
    for (const auto& w : r.workers) {
      net += w.network_takes;
      spills += w.spills;
    }
    t.add_row({std::to_string(workers), std::to_string(r.solutions.size()),
               std::to_string(r.nodes_expanded), std::to_string(net),
               std::to_string(spills)});
  }
  std::printf("%s\n", t.str().c_str());

  if (trace != nullptr) {
    if (!obs::write_chrome_trace(sink, trace_path)) {
      std::printf("error: cannot write %s\n", trace_path.c_str());
      return 1;
    }
    std::printf("flight recorder: %llu events (%llu dropped) -> %s\n\n",
                static_cast<unsigned long long>(sink.recorded()),
                static_cast<unsigned long long>(sink.dropped()),
                trace_path.c_str());
  }

  std::printf("AND-parallelism (§7): independent goals run as one group each\n\n");
  engine::Interpreter ip;
  ip.consult_string(workloads::figure1_family() + workloads::list_library());
  const auto res =
      andp::solve_and_parallel(ip, "gf(sam,G), append(X,Y,[1,2,3])");
  std::printf("?- gf(sam,G), append(X,Y,[1,2,3]).\n");
  std::printf("groups: %zu  solutions: %zu  sequential nodes: %zu  "
              "critical path: %zu  AND-speedup: %.2fx\n",
              res.groups.size(), res.solutions.size(), res.sequential_nodes,
              res.critical_path_nodes, res.and_speedup());
  for (const auto& s : res.solutions) std::printf("  %s\n", s.c_str());
  return 0;
}
