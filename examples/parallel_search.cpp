// OR-parallel search on real threads: the §6 machine behaviour (local
// frontiers, minimum-seeking network, threshold D) on a path-enumeration
// workload, plus the AND-parallel executor of §7 on an independent
// conjunction.
#include <cstdio>

#include "blog/andp/exec.hpp"
#include "blog/parallel/engine.hpp"
#include "blog/support/table.hpp"
#include "blog/workloads/workloads.hpp"

using namespace blog;

int main() {
  const std::string dag = workloads::layered_dag(5, 3);

  std::printf("OR-parallelism: all paths from n0_0 in a 5x3 layered DAG\n\n");
  Table t({"workers", "solutions", "nodes", "network takes", "spills"});
  for (const unsigned workers : {1u, 2u, 4u, 8u}) {
    engine::Interpreter ip;
    ip.consult_string(dag);
    parallel::ParallelOptions po;
    po.workers = workers;
    po.update_weights = false;
    parallel::ParallelEngine pe(ip.program(), ip.weights(), &ip.builtins(), po);
    const auto r = pe.solve(ip.parse_query("path(n0_0,Z,P)"));
    std::uint64_t net = 0, spills = 0;
    for (const auto& w : r.workers) {
      net += w.network_takes;
      spills += w.spills;
    }
    t.add_row({std::to_string(workers), std::to_string(r.solutions.size()),
               std::to_string(r.nodes_expanded), std::to_string(net),
               std::to_string(spills)});
  }
  std::printf("%s\n", t.str().c_str());

  std::printf("AND-parallelism (§7): independent goals run as one group each\n\n");
  engine::Interpreter ip;
  ip.consult_string(workloads::figure1_family() + workloads::list_library());
  const auto res =
      andp::solve_and_parallel(ip, "gf(sam,G), append(X,Y,[1,2,3])");
  std::printf("?- gf(sam,G), append(X,Y,[1,2,3]).\n");
  std::printf("groups: %zu  solutions: %zu  sequential nodes: %zu  "
              "critical path: %zu  AND-speedup: %.2fx\n",
              res.groups.size(), res.solutions.size(), res.sequential_nodes,
              res.critical_path_nodes, res.and_speedup());
  for (const auto& s : res.solutions) std::printf("  %s\n", s.c_str());
  return 0;
}
