// An interactive B-LOG client speaking to the QueryService serving layer:
// consult publishes copy-on-write snapshots, repeated queries hit the
// answer cache, budgets cut runaway searches, and :stats shows the
// service-side counters.
//
//   $ blog_repl [program.pl ...]
//   ?- gf(sam,G).
//   G=den ;  G=doug.
//   ?- :strategy best        % depth | breadth | best
//   ?- :workers 4            % >1: thread-parallel solve
//   ?- :budget nodes 10000   % nodes | solutions | ms (0 = unlimited)
//   ?- :stream on            % async submit: answers print as found
//   ?- :tree gf(sam,G)       % print the searched OR-tree
//   ?- :session end          % §5: merge session weights conservatively
//   ?- :stats                % service counters + latency percentiles
//   ?- :trace on             % attach the flight recorder
//   ?- :trace dump t.json    % export Chrome/Perfetto trace JSON
//   ?- :analyze gf/2         % consult-time groundness/determinism verdicts
//   ?- :halt
#include <cstdio>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>

#include "blog/analysis/domain.hpp"
#include "blog/obs/chrome_trace.hpp"
#include "blog/service/service.hpp"
#include "blog/term/reader.hpp"
#include "blog/trace/tree.hpp"
#include "blog/workloads/workloads.hpp"

using namespace blog;

namespace {

struct ReplState {
  service::QueryService svc;
  service::QueryRequest req;  // text overwritten per query
  bool stream = false;        // :stream — pull answers as the search runs
  std::unique_ptr<obs::TraceSink> sink;  // owned flight recorder (:trace)
};

void run_query(ReplState& st, const std::string& text) {
  st.req.text = text;
  service::QueryResponse r;
  std::size_t streamed = 0;
  if (st.stream) {
    service::SubmitOptions sub;
    sub.stream = true;
    auto ticket = st.svc.submit(st.req, sub);
    // Print answers in discovery order while the workers search; the
    // stream closes (nullopt) once the response is final.
    for (auto* as = ticket.stream(); as != nullptr;) {
      auto a = as->next();
      if (!a) break;
      std::printf("%s ;\n", a->c_str());
      ++streamed;
    }
    r = ticket.wait();
  } else {
    r = st.svc.query(st.req);
  }
  switch (r.status) {
    case service::QueryStatus::ParseError:
      std::printf("syntax error: %s\n", r.error.c_str());
      return;
    case service::QueryStatus::Rejected:
      std::printf("%% rejected: %s\n", r.error.c_str());
      return;
    default:
      break;
  }
  if (st.stream) {
    if (streamed == 0)
      std::printf("false.\n");
    else
      std::printf("%% %zu answer%s.\n", streamed, streamed == 1 ? "" : "s");
  } else if (r.answers.empty()) {
    std::printf("false.\n");
  } else {
    for (std::size_t i = 0; i < r.answers.size(); ++i)
      std::printf("%s%s", r.answers[i].c_str(),
                  i + 1 < r.answers.size() ? " ;\n" : ".\n");
  }
  if (r.from_cache)
    std::printf("%% cached (epoch %llu)\n",
                static_cast<unsigned long long>(r.epoch));
  if (r.status == service::QueryStatus::Truncated)
    std::printf("%% truncated: %s after %llu nodes\n",
                search::outcome_name(r.outcome),
                static_cast<unsigned long long>(r.nodes_expanded));
  if (r.status == service::QueryStatus::Cancelled)
    std::printf("%% cancelled: %s (answers above are partial)\n",
                r.error.c_str());
}

// :tree runs outside the cache on the service's published snapshot, with
// the tree-recording observer attached to a private engine.
void run_tree(ReplState& st, const std::string& text) {
  try {
    const auto snap = st.svc.snapshot();
    trace::TreeRecorder rec;
    auto obs = rec.observer();
    search::SearchOptions o;
    o.strategy = st.req.strategy;
    o.limits = st.req.budget.limits();
    search::SearchEngine eng(*snap->program, st.svc.weights(),
                             &st.svc.builtins());
    eng.solve(engine::parse_query(text), o, &obs);
    std::printf("%s", rec.render_text().c_str());
  } catch (const term::ParseError& e) {
    std::printf("syntax error at %d:%d: %s\n", e.line, e.col, e.what());
  }
}

bool command(ReplState& st, const std::string& line) {
  std::istringstream is(line.substr(1));
  std::string cmd;
  is >> cmd;
  if (cmd == "halt" || cmd == "quit") return false;
  if (cmd == "strategy") {
    std::string s;
    is >> s;
    if (s == "depth") st.req.strategy = search::Strategy::DepthFirst;
    else if (s == "breadth") st.req.strategy = search::Strategy::BreadthFirst;
    else if (s == "best") st.req.strategy = search::Strategy::BestFirst;
    else std::printf("usage: :strategy depth|breadth|best\n");
  } else if (cmd == "workers") {
    unsigned w = 1;
    if (is >> w && w >= 1) st.req.workers = w;
    else std::printf("usage: :workers <n>\n");
  } else if (cmd == "budget") {
    std::string what;
    long long v = 0;
    if (is >> what >> v && v >= 0) {
      if (what == "nodes")
        st.req.budget.max_nodes =
            v == 0 ? std::numeric_limits<std::size_t>::max()
                   : static_cast<std::size_t>(v);
      else if (what == "solutions")
        st.req.budget.max_solutions =
            v == 0 ? std::numeric_limits<std::size_t>::max()
                   : static_cast<std::size_t>(v);
      else if (what == "ms")
        st.req.budget.deadline = std::chrono::milliseconds(v);
      else
        std::printf("usage: :budget nodes|solutions|ms <n>\n");
    } else {
      std::printf("usage: :budget nodes|solutions|ms <n>\n");
    }
  } else if (cmd == "stream") {
    std::string s;
    is >> s;
    if (s == "on") st.stream = true;
    else if (s == "off") st.stream = false;
    else std::printf("usage: :stream on|off\n");
    if (s == "on" || s == "off")
      std::printf("%% streaming %s\n", st.stream ? "on" : "off");
  } else if (cmd == "tree") {
    std::string q;
    std::getline(is, q);
    if (!q.empty()) run_tree(st, q);
  } else if (cmd == "session") {
    std::string s;
    is >> s;
    if (s == "begin") {
      st.svc.weights().begin_session();
      std::printf("%% session weights discarded\n");
    } else if (s == "end") {
      st.svc.end_session();
      std::printf("%% session merged: %zu global weights (epoch %llu)\n",
                  st.svc.weights().global_size(),
                  static_cast<unsigned long long>(st.svc.stats().epoch));
    } else {
      std::printf("usage: :session begin|end\n");
    }
  } else if (cmd == "stats") {
    const auto s = st.svc.stats();
    std::printf(
        "queries %llu (cache hits %llu, truncated %llu, rejected %llu, "
        "parse errors %llu)\n"
        "latency: n=%llu mean %.3fms p50 %.3fms p95 %.3fms p99 %.3fms "
        "max %.3fms\n"
        "cache: %llu hits / %llu misses, %llu inserted, %llu evicted, "
        "%llu invalidated\n"
        "admission: %llu admitted (%llu queued), epoch %llu, %zu clauses\n",
        static_cast<unsigned long long>(s.queries),
        static_cast<unsigned long long>(s.cache_hits),
        static_cast<unsigned long long>(s.truncated),
        static_cast<unsigned long long>(s.rejected),
        static_cast<unsigned long long>(s.parse_errors),
        static_cast<unsigned long long>(s.latency_count), s.latency_mean_ms,
        s.latency_p50_ms, s.latency_p95_ms, s.latency_p99_ms,
        s.latency_max_ms,
        static_cast<unsigned long long>(s.cache.hits),
        static_cast<unsigned long long>(s.cache.misses),
        static_cast<unsigned long long>(s.cache.insertions),
        static_cast<unsigned long long>(s.cache.evictions),
        static_cast<unsigned long long>(s.cache.invalidated),
        static_cast<unsigned long long>(s.admission.admitted),
        static_cast<unsigned long long>(s.admission.queued),
        static_cast<unsigned long long>(s.epoch), s.program_clauses);
  } else if (cmd == "metrics") {
    std::printf("%s", st.svc.metrics().dump_text().c_str());
  } else if (cmd == "trace") {
    std::string sub;
    is >> sub;
    if (sub == "on") {
      if (!st.sink) st.sink = std::make_unique<obs::TraceSink>();
      st.svc.set_trace(st.sink.get());
      std::printf("%% flight recorder on (%llu events so far)\n",
                  static_cast<unsigned long long>(st.sink->recorded()));
    } else if (sub == "off") {
      st.svc.set_trace(nullptr);
      std::printf("%% flight recorder off\n");
    } else if (sub == "dump") {
      std::string path;
      is >> path;
      if (st.sink == nullptr || path.empty()) {
        std::printf(st.sink == nullptr ? "%% no trace yet — :trace on first\n"
                                       : "usage: :trace dump <file>\n");
      } else if (obs::write_chrome_trace(*st.sink, path)) {
        std::printf("%% wrote %s (%llu events, %llu dropped) — load in "
                    "ui.perfetto.dev\n",
                    path.c_str(),
                    static_cast<unsigned long long>(st.sink->recorded()),
                    static_cast<unsigned long long>(st.sink->dropped()));
      } else {
        std::printf("error: cannot write %s\n", path.c_str());
      }
    } else {
      std::printf("usage: :trace on|off|dump <file>\n");
    }
  } else if (cmd == "analyze") {
    // :analyze <name>[/<arity>] — print the consult-time verdicts for a
    // predicate from the published snapshot's attached analysis.
    std::string spec;
    is >> spec;
    if (spec.empty()) {
      std::printf("usage: :analyze <name>[/<arity>]\n");
      return true;
    }
    long long want_arity = -1;
    if (const auto slash = spec.rfind('/'); slash != std::string::npos) {
      try {
        want_arity = std::stoll(spec.substr(slash + 1));
        spec = spec.substr(0, slash);
      } catch (const std::exception&) {
        std::printf("usage: :analyze <name>[/<arity>]\n");
        return true;
      }
    }
    const auto snap = st.svc.snapshot();
    const auto& a = snap->program->analysis();
    if (a == nullptr) {
      std::printf("%% no analysis attached (empty program?)\n");
      return true;
    }
    bool found = false;
    const Symbol name = intern(spec);
    for (const auto& [pred, pi] : a->preds) {
      if (pred.name != name) continue;
      if (want_arity >= 0 &&
          pred.arity != static_cast<std::uint32_t>(want_arity))
        continue;
      found = true;
      std::printf("%s/%u: %zu clause%s", spec.c_str(), pred.arity,
                  pi.clause_count, pi.clause_count == 1 ? "" : "s");
      if (!pi.proven_succeeds) {
        std::printf(", never proven to succeed\n");
        continue;
      }
      std::printf(", modes(");
      for (std::size_t i = 0; i < pi.success_modes.size(); ++i)
        std::printf("%s%s", i ? "," : "",
                    analysis::mode_name(pi.success_modes[i]));
      std::printf(")");
      if (pi.all_ground_facts)
        std::printf(", all-ground facts");
      else if (pi.all_facts)
        std::printf(", all facts");
      if (pi.det_unique_key) std::printf(", unique-key deterministic");
      if (pi.det_mutex_heads) std::printf(", mutex heads");
      std::printf("\n");
    }
    if (!found)
      std::printf("%% no clauses for %s%s\n", spec.c_str(),
                  want_arity >= 0
                      ? ("/" + std::to_string(want_arity)).c_str()
                      : "");
  } else if (cmd == "consult") {
    std::string path;
    is >> path;
    try {
      st.svc.consult_file(path);
      const auto s = st.svc.stats();
      std::printf("%% consulted %s (%zu clauses, epoch %llu)\n", path.c_str(),
                  s.program_clauses, static_cast<unsigned long long>(s.epoch));
    } catch (const std::exception& e) {
      std::printf("error: %s\n", e.what());
    }
  } else if (cmd == "demo") {
    st.svc.consult(workloads::figure1_family());
    std::printf("%% loaded the Figure 1 family database\n");
  } else {
    std::printf("commands: :strategy :workers :budget :stream :tree :session "
                ":stats :metrics :trace :analyze :consult :demo :halt\n");
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  ReplState st;
  st.req.strategy = search::Strategy::BestFirst;
  for (int i = 1; i < argc; ++i) {
    try {
      st.svc.consult_file(argv[i]);
      std::printf("%% consulted %s\n", argv[i]);
    } catch (const std::exception& e) {
      std::printf("error consulting %s: %s\n", argv[i], e.what());
    }
  }
  std::printf("B-LOG query service REPL. :demo loads the paper's database; "
              ":halt exits.\n");
  std::string line;
  for (;;) {
    std::printf("?- ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    // Trim.
    while (!line.empty() && (line.back() == ' ' || line.back() == '.'))
      line.pop_back();
    if (line.empty()) continue;
    if (line[0] == ':') {
      if (!command(st, line)) break;
      continue;
    }
    run_query(st, line);
  }
  return 0;
}
