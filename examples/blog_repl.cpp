// An interactive B-LOG interpreter: consult files, run queries, switch
// strategies, inspect weights, draw the OR-tree.
//
//   $ blog_repl [program.pl ...]
//   ?- gf(sam,G).
//   G=den ;  G=doug.
//   ?- :strategy best        % depth | breadth | best
//   ?- :order fanout         % leftmost | fanout | cheapest
//   ?- :tree gf(sam,G)       % print the searched OR-tree
//   ?- :session end          % §5: merge session weights conservatively
//   ?- :stats                % last query's statistics
//   ?- :halt
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "blog/engine/interpreter.hpp"
#include "blog/term/reader.hpp"
#include "blog/trace/tree.hpp"
#include "blog/workloads/workloads.hpp"

using namespace blog;

namespace {

struct ReplState {
  engine::Interpreter ip;
  search::SearchOptions opts;
  search::SearchStats last_stats;
};

void run_query(ReplState& st, const std::string& text, bool draw_tree) {
  try {
    trace::TreeRecorder rec;
    auto obs = rec.observer();
    const auto r = st.ip.solve(text, st.opts, draw_tree ? &obs : nullptr);
    st.last_stats = r.stats;
    if (r.solutions.empty()) {
      std::printf("false.\n");
    } else {
      for (std::size_t i = 0; i < r.solutions.size(); ++i) {
        std::printf("%s%s", r.solutions[i].text.c_str(),
                    i + 1 < r.solutions.size() ? " ;\n" : ".\n");
      }
    }
    if (!r.exhausted) std::printf("%% search truncated (budget/limit hit)\n");
    if (draw_tree) std::printf("\n%s", rec.render_text().c_str());
  } catch (const term::ParseError& e) {
    std::printf("syntax error at %d:%d: %s\n", e.line, e.col, e.what());
  }
}

bool command(ReplState& st, const std::string& line) {
  std::istringstream is(line.substr(1));
  std::string cmd;
  is >> cmd;
  if (cmd == "halt" || cmd == "quit") return false;
  if (cmd == "strategy") {
    std::string s;
    is >> s;
    if (s == "depth") st.opts.strategy = search::Strategy::DepthFirst;
    else if (s == "breadth") st.opts.strategy = search::Strategy::BreadthFirst;
    else if (s == "best") st.opts.strategy = search::Strategy::BestFirst;
    else std::printf("usage: :strategy depth|breadth|best\n");
  } else if (cmd == "order") {
    std::string s;
    is >> s;
    if (s == "leftmost") st.opts.expander.goal_order = search::GoalOrder::Leftmost;
    else if (s == "fanout")
      st.opts.expander.goal_order = search::GoalOrder::SmallestFanout;
    else if (s == "cheapest")
      st.opts.expander.goal_order = search::GoalOrder::CheapestPointer;
    else std::printf("usage: :order leftmost|fanout|cheapest\n");
  } else if (cmd == "tree") {
    std::string q;
    std::getline(is, q);
    if (!q.empty()) run_query(st, q, true);
  } else if (cmd == "session") {
    std::string s;
    is >> s;
    if (s == "begin") {
      st.ip.begin_session();
      std::printf("%% session weights discarded\n");
    } else if (s == "end") {
      st.ip.end_session();
      std::printf("%% session merged: %zu global weights\n",
                  st.ip.weights().global_size());
    } else {
      std::printf("usage: :session begin|end\n");
    }
  } else if (cmd == "stats") {
    const auto& s = st.last_stats;
    std::printf("nodes %zu, children %zu, solutions %zu, failures %zu, "
                "pruned %zu, max frontier %zu\n",
                s.nodes_expanded, s.children_generated, s.solutions,
                s.failures, s.pruned, s.max_frontier);
  } else if (cmd == "consult") {
    std::string path;
    is >> path;
    try {
      st.ip.consult_file(path);
      std::printf("%% consulted %s (%zu clauses total)\n", path.c_str(),
                  st.ip.program().size());
    } catch (const std::exception& e) {
      std::printf("error: %s\n", e.what());
    }
  } else if (cmd == "demo") {
    st.ip.consult_string(workloads::figure1_family());
    std::printf("%% loaded the Figure 1 family database\n");
  } else {
    std::printf("commands: :strategy :order :tree :session :stats :consult "
                ":demo :halt\n");
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  ReplState st;
  st.opts.strategy = search::Strategy::BestFirst;
  for (int i = 1; i < argc; ++i) {
    try {
      st.ip.consult_file(argv[i]);
      std::printf("%% consulted %s\n", argv[i]);
    } catch (const std::exception& e) {
      std::printf("error consulting %s: %s\n", argv[i], e.what());
    }
  }
  std::printf("B-LOG interactive interpreter. :demo loads the paper's "
              "database; :halt exits.\n");
  std::string line;
  for (;;) {
    std::printf("?- ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    // Trim.
    while (!line.empty() && (line.back() == ' ' || line.back() == '.'))
      line.pop_back();
    if (line.empty()) continue;
    if (line[0] == ':') {
      if (!command(st, line)) break;
      continue;
    }
    run_query(st, line, false);
  }
  return 0;
}
