// The B-LOG machine (§6) solving a query on simulated hardware: processors
// with scoreboard-multitasked tasks, semantic paging disks, the
// minimum-seeking network and the multi-write copy memory.
#include <cstdio>

#include "blog/machine/sim.hpp"
#include "blog/support/table.hpp"
#include "blog/workloads/workloads.hpp"

using namespace blog;

int main() {
  const std::string dag = workloads::layered_dag(4, 3);

  std::printf("B-LOG machine simulation: path enumeration in a 4x3 DAG\n\n");
  Table t({"procs", "tasks/proc", "makespan", "speedup", "util", "disk wait",
           "copy share"});
  double base = 0.0;
  for (const auto& [procs, tasks] :
       std::vector<std::pair<unsigned, unsigned>>{
           {1, 1}, {1, 4}, {2, 4}, {4, 4}, {8, 4}, {16, 4}}) {
    engine::Interpreter ip;
    ip.consult_string(dag);
    machine::MachineConfig cfg;
    cfg.processors = procs;
    cfg.tasks_per_processor = tasks;
    cfg.update_weights = false;
    cfg.local_memory_blocks = 16;
    machine::MachineSim sim(ip.program(), ip.weights(), &ip.builtins(), cfg);
    const auto rep = sim.run(ip.parse_query("path(n0_0,Z,P)"));
    if (base == 0.0) base = rep.makespan;
    t.add_row({std::to_string(procs), std::to_string(tasks),
               Table::num(rep.makespan, 0), Table::num(base / rep.makespan),
               Table::num(rep.utilization(), 2),
               Table::num(rep.disk_wait, 0), Table::num(rep.copy_share(), 2)});
  }
  std::printf("%s\n", t.str().c_str());

  std::printf("the same machine, varying the multi-write width (§6):\n\n");
  Table t2({"write width", "makespan", "copy cycles"});
  for (const unsigned width : {1u, 2u, 4u, 8u, 16u}) {
    engine::Interpreter ip;
    ip.consult_string(dag);
    machine::MachineConfig cfg;
    cfg.processors = 4;
    cfg.update_weights = false;
    cfg.copy.write_width = width;
    machine::MachineSim sim(ip.program(), ip.weights(), &ip.builtins(), cfg);
    const auto rep = sim.run(ip.parse_query("path(n0_0,Z,P)"));
    t2.add_row({std::to_string(width), Table::num(rep.makespan, 0),
                Table::num(rep.copy_cycles, 0)});
  }
  std::printf("%s", t2.str().c_str());
  return 0;
}
