// Quickstart: the paper's Figure 1 example, end to end.
//
// Loads the Conery–Kibler family database, runs the grandchild query with
// Prolog-style depth-first search and with B-LOG best-first search, shows
// the weight adaptation of §5, and prints the Figure 3 OR-tree statistics.
#include <cstdio>

#include "blog/engine/interpreter.hpp"
#include "blog/support/table.hpp"
#include "blog/theory/chains.hpp"
#include "blog/theory/weights.hpp"
#include "blog/workloads/workloads.hpp"

using namespace blog;

int main() {
  engine::Interpreter ip;
  ip.consult_string(workloads::figure1_family());

  std::printf("B-LOG quickstart: the Figure 1 database (%zu clauses)\n\n",
              ip.program().size());

  // --- 1. answer the query with each strategy ---------------------------
  Table t({"strategy", "solutions", "nodes", "failures", "max frontier"});
  for (const auto strat : {search::Strategy::DepthFirst,
                           search::Strategy::BreadthFirst,
                           search::Strategy::BestFirst}) {
    engine::Interpreter fresh;
    fresh.consult_string(workloads::figure1_family());
    search::SearchOptions opts;
    opts.strategy = strat;
    const auto r = fresh.solve("gf(sam,G)", opts);
    std::string sols;
    for (const auto& s : r.solutions) sols += s.text + " ";
    t.add_row({search::strategy_name(strat), sols,
               std::to_string(r.stats.nodes_expanded),
               std::to_string(r.stats.failures),
               std::to_string(r.stats.max_frontier)});
  }
  std::printf("?- gf(sam,G).\n%s\n", t.str().c_str());

  // --- 2. weights adapt: re-run and watch the cost drop ------------------
  std::printf("adaptive weights (§5): repeated best-first queries\n");
  Table t2({"run", "nodes expanded", "first solution bound"});
  for (int run = 1; run <= 3; ++run) {
    search::SearchOptions opts;
    opts.strategy = search::Strategy::BestFirst;
    const auto r = ip.solve("gf(sam,G)", opts);
    t2.add_row({std::to_string(run), std::to_string(r.stats.nodes_expanded),
                r.solutions.empty() ? "-" : Table::num(r.solutions[0].bound)});
  }
  std::printf("%s\n", t2.str().c_str());

  // --- 3. the Figure 3 OR-tree ------------------------------------------
  engine::Interpreter fresh;
  fresh.consult_string(workloads::figure1_family());
  const auto tree = theory::enumerate_chains(fresh, "gf(sam,G)");
  std::printf("Figure 3 OR-tree: %zu solution chains, %zu failed chain(s)\n",
              tree.solutions, tree.failures);

  const auto w = theory::solve_theoretical(tree);
  std::printf(
      "theoretical bound of every solution (§4): log2(%zu) = %.1f, "
      "system solved with residual %.2e over %zu arcs\n",
      tree.solutions, w.target_bound, w.residual, w.unknowns);
  return 0;
}
