// Sessions (§5): a user asks a series of *similar* queries. Within the
// session, strong weight updates make later searches cheaper; at the end,
// the session is merged conservatively into the global database, improving
// the starting point of the next session.
#include <cstdio>

#include "blog/engine/interpreter.hpp"
#include "blog/support/table.hpp"
#include "blog/workloads/workloads.hpp"

using namespace blog;

int main() {
  Rng rng(2026);
  const std::string family = workloads::random_family(rng, 4, 4);

  engine::Interpreter ip;
  ip.consult_string(family);
  std::printf("session demo on a generated family database (%zu clauses)\n\n",
              ip.program().size());

  const char* queries[] = {"gf(p0_0,G)", "gf(p0_0,G)", "gf(p0_1,G)",
                           "gf(p0_0,G)", "gf(p1_0,G)", "gf(p0_0,G)"};

  search::SearchOptions opts;
  opts.strategy = search::Strategy::BestFirst;
  opts.limits.max_solutions = 1;

  std::printf("--- session 1 (weights adapt locally) ---\n");
  Table t1({"query", "nodes to first solution"});
  ip.begin_session();
  for (const char* q : queries) {
    const auto r = ip.solve(q, opts);
    t1.add_row({q, std::to_string(r.stats.nodes_expanded)});
  }
  std::printf("%s", t1.str().c_str());
  std::printf("session weights recorded: %zu\n\n", ip.weights().session_size());

  ip.end_session();
  std::printf("end_session(): conservative merge -> %zu global weights\n\n",
              ip.weights().global_size());

  std::printf("--- session 2 (starts from the merged global weights) ---\n");
  Table t2({"query", "nodes to first solution"});
  ip.begin_session();
  for (const char* q : queries) {
    const auto r = ip.solve(q, opts);
    t2.add_row({q, std::to_string(r.stats.nodes_expanded)});
  }
  ip.end_session();
  std::printf("%s\n", t2.str().c_str());

  std::printf(
      "note how session 2's first query already benefits from session 1's\n"
      "merged weights, while a failed branch recorded as infinity never\n"
      "overrides a known-good global weight (the conservative rule).\n");
  return 0;
}
