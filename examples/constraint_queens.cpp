// A combinatorial workload: N-queens through the public API, comparing how
// the three strategies cope with a search space where most chains fail —
// exactly the situation the bound-guided search is meant for.
#include <cstdio>

#include "blog/engine/interpreter.hpp"
#include "blog/support/table.hpp"
#include "blog/workloads/workloads.hpp"

using namespace blog;

int main() {
  std::printf("N-queens with the B-LOG engine\n\n");
  Table t({"n", "strategy", "solutions", "nodes", "failures"});
  for (const int n : {4, 5, 6}) {
    const std::string program = workloads::queens(n);
    const std::string query = "queens" + std::to_string(n) + "(Qs)";
    for (const auto strat :
         {search::Strategy::DepthFirst, search::Strategy::BestFirst}) {
      engine::Interpreter ip;
      ip.consult_string(program);
      search::SearchOptions opts;
      opts.strategy = strat;
      opts.expander.max_depth = 256;
      const auto r = ip.solve(query, opts);
      t.add_row({std::to_string(n), search::strategy_name(strat),
                 std::to_string(r.solutions.size()),
                 std::to_string(r.stats.nodes_expanded),
                 std::to_string(r.stats.failures)});
    }
  }
  std::printf("%s\n", t.str().c_str());

  // Adaptive replay: solve 6-queens once, then again with learned weights
  // aiming for the first solution only.
  engine::Interpreter ip;
  ip.consult_string(workloads::queens(6));
  search::SearchOptions opts;
  opts.strategy = search::Strategy::BestFirst;
  opts.expander.max_depth = 256;
  (void)ip.solve("queens6(Qs)", opts);  // learn
  opts.limits.max_solutions = 1;
  const auto replay = ip.solve("queens6(Qs)", opts);
  std::printf("6-queens replay with adapted weights: first solution after "
              "%zu nodes: %s\n",
              replay.stats.nodes_expanded,
              replay.solutions.empty() ? "-" : replay.solutions[0].text.c_str());
  return 0;
}
